// Package eventbus provides the in-process publish/subscribe fabric that a
// Range's Event Mediator is built on.
//
// The paper's hybrid communication model (Section 4) combines distributed
// events with point-to-point communication. Within one Range, all event
// traffic between Context Entities and Context Aware Applications flows
// through a Bus: producers publish typed events; subscribers receive the
// subset matching their Filter on a bounded queue serviced by a dedicated
// delivery goroutine, so one slow consumer can never stall producers or
// other consumers.
//
// # Dispatch architecture
//
// Dispatch is a two-tier subscription index, lock-striped across a
// power-of-two number of shards (WithShards):
//
//   - The exact tier indexes every subscription whose filter names a
//     concrete context-type pattern, keyed by that pattern in the shard the
//     pattern hashes to. A publish resolves its target set by looking up the
//     event's type, each of its ancestors in the dotted hierarchy, and the
//     members of its declared semantic-equivalence class — a handful of O(1)
//     map probes whose cost is independent of the total number of
//     subscriptions. The per-event key set is memoised in a copy-on-write
//     cache invalidated by the type registry's equivalence generation.
//   - The residual tier holds the remaining subscriptions — wildcard or
//     empty type patterns — which genuinely need per-event matching. Each
//     residual subscription lives in the shard its id hashes to; publishes
//     skip the residual scan entirely while the tier is empty.
//
// Because shards are independent, concurrent publishers on different
// context types never contend on a lock, and subscription churn in one
// shard does not serialise publishes through the others. Target slices are
// pooled, so a publish resolved purely through the exact index performs no
// allocation. Per-shard publish/deliver/drop counters and the bus-wide
// index-hit/residual-scan ratio (IndexHitRatio) make the index's
// effectiveness observable.
package eventbus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
)

// DropPolicy selects behaviour when a subscriber's queue is full.
type DropPolicy int

const (
	// DropOldest discards the oldest queued event to admit the new one
	// (default: context data is freshest-wins).
	DropOldest DropPolicy = iota + 1
	// DropNewest discards the incoming event.
	DropNewest
)

// DefaultQueueLen is the per-subscription queue capacity when none is given.
const DefaultQueueLen = 64

// DefaultShards is the number of lock stripes when none is configured.
const DefaultShards = 8

// maxShards bounds WithShards to keep per-publish residual sweeps and
// shard-stat snapshots cheap.
const maxShards = 1024

// maxKeyCacheTypes bounds the memoised event-type → lookup-keys table; a
// running system sees few distinct event types, so the bound exists only to
// survive adversarial type churn.
const maxKeyCacheTypes = 4096

// ErrClosed is returned when operating on a closed Bus or subscription.
var ErrClosed = errors.New("eventbus: closed")

// Handler consumes delivered events. Handlers run on the subscription's
// delivery goroutine: they may block that subscription only.
type Handler func(event.Event)

// Stats counts bus activity; retrieved via Bus.Stats.
type Stats struct {
	Published uint64 // events accepted by Publish
	Delivered uint64 // handler invocations completed
	Dropped   uint64 // events discarded by full queues
	Subs      int    // current live subscriptions
	// IndexHits counts targets resolved through the exact-pattern index.
	IndexHits uint64
	// ResidualScanned counts residual-tier filter evaluations: wildcard
	// subscriptions examined one by one per publish.
	ResidualScanned uint64
}

// ShardStats is one lock stripe's view of the dispatch load.
type ShardStats struct {
	Published uint64 // events whose type hashed to this shard
	Delivered uint64 // deliveries completed by subscriptions in this shard
	Dropped   uint64 // events discarded by full queues in this shard
	Patterns  int    // distinct exact-tier patterns indexed here
	Exact     int    // live exact-tier subscriptions
	Residual  int    // live residual-tier subscriptions
}

// Option configures a Bus.
type Option func(*Bus)

// WithShards sets the number of lock stripes (rounded up to a power of two,
// clamped to [1, 1024]). More shards reduce publisher contention at the cost
// of slightly dearer residual sweeps and stat snapshots.
func WithShards(n int) Option {
	return func(b *Bus) { b.nshards = n }
}

// shard is one lock stripe: a slice of the exact-pattern index plus a slice
// of the residual (wildcard) list, with its own dispatch counters.
type shard struct {
	mu       sync.RWMutex
	exact    map[ctxtype.Type][]*Subscription
	residual []*Subscription

	// nresidual mirrors len(residual) so publishes can skip empty stripes
	// without taking the lock — with many stripes and few wildcard
	// subscriptions, the sweep costs one atomic load per stripe.
	nresidual atomic.Int64

	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
}

// keyTable memoises event type → index lookup keys for one equivalence
// generation of the registry. It is immutable once published; misses install
// a fresh copy (copy-on-write), so readers never take a lock.
type keyTable struct {
	gen  uint64
	keys map[ctxtype.Type][]ctxtype.Type
}

// Bus is a concurrent publish/subscribe dispatcher. Construct with New.
type Bus struct {
	reg     *ctxtype.Registry // optional: enables semantic-equivalence matching
	nshards int
	shards  []*shard
	mask    uint32

	closed  atomic.Bool
	closeMu sync.Mutex // serialises Close against itself

	published       atomic.Uint64
	delivered       atomic.Uint64
	dropped         atomic.Uint64
	indexHits       atomic.Uint64
	residualScanned atomic.Uint64
	residuals       atomic.Int64 // live residual subs; publishes skip the sweep at 0

	keys atomic.Pointer[keyTable]

	wg sync.WaitGroup
}

// New constructs a Bus. reg may be nil, in which case filters match on the
// type hierarchy only.
func New(reg *ctxtype.Registry, opts ...Option) *Bus {
	b := &Bus{reg: reg, nshards: DefaultShards}
	for _, o := range opts {
		o(b)
	}
	n := 1
	for n < b.nshards && n < maxShards {
		n <<= 1
	}
	b.nshards = n
	b.mask = uint32(n - 1)
	b.shards = make([]*shard, n)
	for i := range b.shards {
		b.shards[i] = &shard{exact: make(map[ctxtype.Type][]*Subscription)}
	}
	return b
}

// Shards returns the number of lock stripes.
func (b *Bus) Shards() int { return b.nshards }

// typeShard returns the stripe a pattern hashes to (FNV-1a, allocation-free).
func (b *Bus) typeShard(t ctxtype.Type) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(t); i++ {
		h ^= uint32(t[i])
		h *= 16777619
	}
	return b.shards[h&b.mask]
}

// idShard returns the stripe a residual subscription's id hashes to. Byte 0
// is the kind tag (constant across subscriptions), so hash the random bytes.
func (b *Bus) idShard(id guid.GUID) *shard {
	return b.shards[binary.BigEndian.Uint32(id[1:5])&b.mask]
}

// Subscription is one consumer's registration with the bus.
type Subscription struct {
	id     guid.GUID
	filter event.Filter
	owner  guid.GUID // the subscribing entity, for bookkeeping/diagnostics
	bus    *Bus

	// Index placement, fixed at Subscribe time.
	shard    *shard
	key      ctxtype.Type // exact-tier pattern ("" when residual)
	residual bool

	mu     sync.Mutex
	queue  []event.Event // ring buffer
	head   int
	count  int
	policy DropPolicy
	wake   chan struct{}
	closed bool

	oneShot bool
	fired   atomic.Bool
}

// SubOption configures a subscription.
type SubOption func(*Subscription)

// WithQueueLen sets the bounded queue capacity (min 1).
func WithQueueLen(n int) SubOption {
	return func(s *Subscription) {
		if n < 1 {
			n = 1
		}
		s.queue = make([]event.Event, n)
	}
}

// WithPolicy sets the full-queue policy.
func WithPolicy(p DropPolicy) SubOption {
	return func(s *Subscription) { s.policy = p }
}

// WithOwner records the subscribing entity's GUID.
func WithOwner(owner guid.GUID) SubOption {
	return func(s *Subscription) { s.owner = owner }
}

// OneShot makes the subscription cancel itself after the first delivery —
// the paper's "one-time subscription" query mode.
func OneShot() SubOption {
	return func(s *Subscription) { s.oneShot = true }
}

// Subscribe registers h for events matching f. The returned Subscription
// must be Cancelled when no longer needed.
//
// Filters naming a concrete type pattern are placed in the exact index under
// that pattern; wildcard and untyped filters join the residual tier.
func (b *Bus) Subscribe(f event.Filter, h Handler, opts ...SubOption) (*Subscription, error) {
	if h == nil {
		return nil, errors.New("eventbus: nil handler")
	}
	s := &Subscription{
		id:     guid.New(guid.KindSubscription),
		filter: f,
		bus:    b,
		policy: DropOldest,
		wake:   make(chan struct{}, 1),
	}
	for _, o := range opts {
		o(s)
	}
	if s.queue == nil {
		s.queue = make([]event.Event, DefaultQueueLen)
	}

	s.residual = f.Type == "" || f.Type == ctxtype.Wildcard
	if s.residual {
		s.shard = b.idShard(s.id)
	} else {
		s.key = f.Type
		s.shard = b.typeShard(f.Type)
	}

	sh := s.shard
	sh.mu.Lock()
	// Re-checked under the stripe lock: Close sets the flag before sweeping
	// the stripes, so either we observe it here or Close observes us there.
	if b.closed.Load() {
		sh.mu.Unlock()
		return nil, ErrClosed
	}
	if s.residual {
		sh.residual = append(sh.residual, s)
		sh.nresidual.Add(1)
		b.residuals.Add(1)
	} else {
		sh.exact[s.key] = append(sh.exact[s.key], s)
	}
	b.wg.Add(1)
	sh.mu.Unlock()

	go func() {
		defer b.wg.Done()
		s.deliverLoop(h)
	}()
	return s, nil
}

// lookupKeys returns the exact-tier patterns an event of type t can match:
// t itself, each ancestor in the dotted hierarchy, and the members of t's
// declared equivalence class. The result is memoised per registry
// generation, so the hot path is a single map probe with no allocation.
func (b *Bus) lookupKeys(t ctxtype.Type) []ctxtype.Type {
	var gen uint64
	if b.reg != nil {
		gen = b.reg.Generation()
	}
	kt := b.keys.Load()
	if kt != nil && kt.gen == gen {
		if ks, ok := kt.keys[t]; ok {
			return ks
		}
	}
	ks := computeKeys(t, b.reg)
	nm := make(map[ctxtype.Type][]ctxtype.Type, 8)
	if kt != nil && kt.gen == gen && len(kt.keys) < maxKeyCacheTypes {
		for k, v := range kt.keys {
			nm[k] = v
		}
	}
	nm[t] = ks
	// A concurrent miss may overwrite this install; the loser's entry is
	// simply recomputed on its next publish.
	b.keys.Store(&keyTable{gen: gen, keys: nm})
	return ks
}

func computeKeys(t ctxtype.Type, reg *ctxtype.Registry) []ctxtype.Type {
	keys := make([]ctxtype.Type, 0, 4)
	for a := t; a != ""; a = a.Parent() {
		keys = append(keys, a)
	}
	if reg != nil {
	equiv:
		for _, eq := range reg.EquivSet(t) {
			for _, k := range keys {
				if k == eq {
					continue equiv
				}
			}
			keys = append(keys, eq)
		}
	}
	return keys
}

// targetPool recycles per-publish target slices across all buses.
var targetPool = sync.Pool{
	New: func() any {
		s := make([]*Subscription, 0, 16)
		return &s
	},
}

// Publish dispatches e to every matching subscription. It never blocks on
// slow consumers. Publish on a closed bus returns ErrClosed.
//
// Targets are resolved through the exact index (O(1) per lookup key) plus a
// sweep of the residual tier when it is non-empty; concurrent publishes on
// context types in different shards proceed without contending.
func (b *Bus) Publish(e event.Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if b.closed.Load() {
		return ErrClosed
	}

	tp := targetPool.Get().(*[]*Subscription)
	targets := (*tp)[:0]

	for _, k := range b.lookupKeys(e.Type) {
		sh := b.typeShard(k)
		sh.mu.RLock()
		for _, s := range sh.exact[k] {
			if s.filter.MatchesRest(e) {
				targets = append(targets, s)
			}
		}
		sh.mu.RUnlock()
	}
	if hits := uint64(len(targets)); hits > 0 {
		b.indexHits.Add(hits)
	}

	if b.residuals.Load() > 0 {
		var scanned uint64
		for _, sh := range b.shards {
			if sh.nresidual.Load() == 0 {
				continue
			}
			sh.mu.RLock()
			scanned += uint64(len(sh.residual))
			for _, s := range sh.residual {
				if s.filter.MatchesIn(e, b.reg) {
					targets = append(targets, s)
				}
			}
			sh.mu.RUnlock()
		}
		if scanned > 0 {
			b.residualScanned.Add(scanned)
		}
	}

	b.published.Add(1)
	b.typeShard(e.Type).published.Add(1)
	for _, s := range targets {
		if n := s.enqueue(e); n > 0 {
			b.dropped.Add(uint64(n))
			s.shard.dropped.Add(uint64(n))
		}
	}
	for i := range targets {
		targets[i] = nil
	}
	*tp = targets[:0]
	targetPool.Put(tp)
	return nil
}

// Stats returns a snapshot of bus counters.
func (b *Bus) Stats() Stats {
	n := 0
	for _, sh := range b.shards {
		sh.mu.RLock()
		for _, list := range sh.exact {
			n += len(list)
		}
		n += len(sh.residual)
		sh.mu.RUnlock()
	}
	return Stats{
		Published:       b.published.Load(),
		Delivered:       b.delivered.Load(),
		Dropped:         b.dropped.Load(),
		Subs:            n,
		IndexHits:       b.indexHits.Load(),
		ResidualScanned: b.residualScanned.Load(),
	}
}

// ShardStats returns a per-stripe snapshot of dispatch load, index ordered.
func (b *Bus) ShardStats() []ShardStats {
	out := make([]ShardStats, len(b.shards))
	for i, sh := range b.shards {
		sh.mu.RLock()
		st := ShardStats{
			Published: sh.published.Load(),
			Delivered: sh.delivered.Load(),
			Dropped:   sh.dropped.Load(),
			Patterns:  len(sh.exact),
			Residual:  len(sh.residual),
		}
		for _, list := range sh.exact {
			st.Exact += len(list)
		}
		sh.mu.RUnlock()
		out[i] = st
	}
	return out
}

// IndexHitRatio reports the fraction of dispatch work resolved through the
// exact index: hits / (hits + residual evaluations). It is 1 when every
// publish resolved via the index and approaches 0 when wildcard scans
// dominate; with no dispatch activity yet it reports 1.
func (b *Bus) IndexHitRatio() float64 {
	hits := b.indexHits.Load()
	res := b.residualScanned.Load()
	if hits+res == 0 {
		return 1
	}
	return float64(hits) / float64(hits+res)
}

// SubscriptionIDs returns the ids of live subscriptions (sorted, for tests
// and the registrar's diagnostics).
func (b *Bus) SubscriptionIDs() []guid.GUID {
	var out []guid.GUID
	for _, sh := range b.shards {
		sh.mu.RLock()
		for _, list := range sh.exact {
			for _, s := range list {
				out = append(out, s.id)
			}
		}
		for _, s := range sh.residual {
			out = append(out, s.id)
		}
		sh.mu.RUnlock()
	}
	guid.Sort(out)
	return out
}

// CancelOwned cancels every subscription owned by the given entity; used by
// the Mediator when an entity departs its Range (Section 3.4). It returns
// the number cancelled.
func (b *Bus) CancelOwned(owner guid.GUID) int {
	var victims []*Subscription
	for _, sh := range b.shards {
		sh.mu.RLock()
		for _, list := range sh.exact {
			for _, s := range list {
				if s.owner == owner {
					victims = append(victims, s)
				}
			}
		}
		for _, s := range sh.residual {
			if s.owner == owner {
				victims = append(victims, s)
			}
		}
		sh.mu.RUnlock()
	}
	for _, s := range victims {
		s.Cancel()
	}
	return len(victims)
}

// Close cancels all subscriptions and waits for delivery goroutines to exit.
// Further Publish/Subscribe calls fail with ErrClosed.
func (b *Bus) Close() {
	b.closeMu.Lock()
	if b.closed.Load() {
		b.closeMu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed.Store(true)
	var victims []*Subscription
	for _, sh := range b.shards {
		sh.mu.Lock()
		for key, list := range sh.exact {
			victims = append(victims, list...)
			delete(sh.exact, key)
		}
		victims = append(victims, sh.residual...)
		sh.residual = nil
		sh.nresidual.Store(0)
		sh.mu.Unlock()
	}
	b.residuals.Store(0)
	b.closeMu.Unlock()
	for _, s := range victims {
		s.Cancel()
	}
	b.wg.Wait()
}

// ID returns the subscription identifier.
func (s *Subscription) ID() guid.GUID { return s.id }

// Owner returns the subscribing entity's GUID (may be nil).
func (s *Subscription) Owner() guid.GUID { return s.owner }

// Filter returns the subscription's filter.
func (s *Subscription) Filter() event.Filter { return s.filter }

// Cancel removes the subscription and stops its delivery goroutine. Queued
// but undelivered events are discarded. Cancel is idempotent.
func (s *Subscription) Cancel() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// Wake the delivery loop so it observes closure.
	select {
	case s.wake <- struct{}{}:
	default:
	}
	s.detach()
}

// detach removes the subscription from its stripe's index. Only the Cancel
// call that flipped s.closed reaches here, so removal runs at most once; a
// Close that already swept the stripe leaves nothing to remove.
func (s *Subscription) detach() {
	sh := s.shard
	sh.mu.Lock()
	if s.residual {
		for i, v := range sh.residual {
			if v == s {
				last := len(sh.residual) - 1
				sh.residual[i] = sh.residual[last]
				sh.residual[last] = nil
				sh.residual = sh.residual[:last]
				sh.nresidual.Add(-1)
				s.bus.residuals.Add(-1)
				break
			}
		}
	} else {
		list := sh.exact[s.key]
		for i, v := range list {
			if v == s {
				last := len(list) - 1
				list[i] = list[last]
				list[last] = nil
				list = list[:last]
				if len(list) == 0 {
					delete(sh.exact, s.key)
				} else {
					sh.exact[s.key] = list
				}
				break
			}
		}
	}
	sh.mu.Unlock()
}

// enqueue adds e to the ring buffer, applying the drop policy. It returns
// the number of events discarded by the call: 0 when e was admitted with no
// eviction, 1 when the queue was full (either e itself under DropNewest, or
// the evicted oldest event under DropOldest). A closed subscription admits
// nothing and drops nothing.
func (s *Subscription) enqueue(e event.Event) int {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	admitted := true
	dropped := 0
	n := len(s.queue)
	if s.count == n {
		dropped = 1
		switch s.policy {
		case DropNewest:
			admitted = false
		default: // DropOldest
			s.head = (s.head + 1) % n
			s.count--
		}
	}
	if admitted {
		s.queue[(s.head+s.count)%n] = e
		s.count++
	}
	s.mu.Unlock()
	if admitted {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	return dropped
}

// dequeue removes the oldest queued event.
func (s *Subscription) dequeue() (event.Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return event.Event{}, false
	}
	e := s.queue[s.head]
	s.queue[s.head] = event.Event{}
	s.head = (s.head + 1) % len(s.queue)
	s.count--
	return e, true
}

func (s *Subscription) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Subscription) deliverLoop(h Handler) {
	for {
		for {
			e, ok := s.dequeue()
			if !ok {
				break
			}
			if s.oneShot {
				if !s.fired.CompareAndSwap(false, true) {
					return
				}
			}
			h(e)
			s.bus.delivered.Add(1)
			s.shard.delivered.Add(1)
			if s.oneShot {
				s.Cancel()
				return
			}
		}
		if s.isClosed() {
			return
		}
		<-s.wake
	}
}

// String implements fmt.Stringer for diagnostics.
func (s *Subscription) String() string {
	return fmt.Sprintf("sub{%s %s}", s.id.Short(), s.filter)
}
