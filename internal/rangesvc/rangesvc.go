// Package rangesvc implements the Range Service and the discovery sequence
// of the paper's Fig 5 over the transport layer.
//
// "When a Context Server starts up, it deploys a Range Service (RS) to all
// the machines within its jurisdiction. The RS performs the task of
// listening for CAAs or CEs starting up in order to inform them about the
// Range's Registrar. The CAA/CE can then contact the Registrar in order to
// gain access to the infrastructure. Upon completion of the registration
// process, the Registrar will return the Context Server details to a CAA
// (in order to submit queries) or the Event Mediator details to a CE (in
// order to publish events)."
//
// Host is the server side: it attaches the Range Service, Registrar-facing
// and Context-Server-facing message handling to a transport endpoint owned
// by a Range. Remote CEs are represented inside the Range by proxy
// components whose emitted events arrive over the wire and whose
// configuration inputs are forwarded back out, so remote entities
// participate in configurations exactly like local ones.
//
// Connector is the client side used by remote processes (cmd/sciquery,
// remote sensors): discover → register → submit queries / publish events /
// receive deliveries.
package rangesvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"sci/internal/clock"
	"sci/internal/entity"
	"sci/internal/event"
	"sci/internal/flow"
	"sci/internal/guid"
	"sci/internal/metrics"
	"sci/internal/profile"
	"sci/internal/query"
	"sci/internal/server"
	"sci/internal/transport"
	"sci/internal/wire"
)

// Wire body types for the Fig 5 protocol.

type announceBody struct {
	// Range and Registrar identify the Range; Server and Mediator are the
	// handles returned after registration per Fig 5 (carried up-front too,
	// which saves a round trip without changing the sequence's semantics).
	Range     guid.GUID `json:"range"`
	Registrar guid.GUID `json:"registrar"`
	Server    guid.GUID `json:"server"`
	Name      string    `json:"name"`
}

type registerBody struct {
	Profile profile.Profile `json:"profile"`
	// Application marks CAAs (they receive query results, not inputs).
	Application bool `json:"application"`
}

type registerAckBody struct {
	// Server is the Context Server GUID (for queries), Mediator the event
	// intake GUID (for publication), per the paper's sequence.
	Server   guid.GUID     `json:"server"`
	Mediator guid.GUID     `json:"mediator"`
	Lease    time.Duration `json:"lease"`
	Error    string        `json:"error,omitempty"`
}

type queryBody struct {
	XML []byte `json:"xml"` // the Fig 6 XML form
}

type queryResultBody struct {
	Profiles      []profile.Profile      `json:"profiles,omitempty"`
	Advertisement *profile.Advertisement `json:"advertisement,omitempty"`
	Provider      guid.GUID              `json:"provider,omitzero"`
	Configuration guid.GUID              `json:"configuration,omitzero"`
	Deferred      bool                   `json:"deferred,omitempty"`
	Error         string                 `json:"error,omitempty"`
}

type serviceCallBody struct {
	Provider guid.GUID      `json:"provider"`
	Op       string         `json:"op"`
	Args     map[string]any `json:"args,omitempty"`
}

type serviceReplyBody struct {
	Result map[string]any `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// Host serves a Range over a transport endpoint. Construct with NewHost.
//
// Outbound event deliveries to remote components flow through a
// per-endpoint flow.Coalescer when the Range's BatchMaxEvents enables it:
// up to BatchMaxEvents events bound for one remote endpoint are collected
// into a single event.batch wire message, with a BatchMaxDelay timer
// flushing partially filled batches so a trickle never stalls. N
// deliveries to one endpoint therefore cost ⌈N/BatchMaxEvents⌉ wire
// messages instead of N — and with RangeConfig.AdaptiveBatching the
// per-endpoint batch size and delay follow each endpoint's observed
// arrival rate between the configured floors and those ceilings. Remote
// receivers acknowledge event.batch messages with flow credit
// (wire.BatchCredit); a collapsing credit throttles that endpoint's
// coalescer flush rate, surfaced through the Range's
// remote.backpressure.* gauges.
//
// Credit flows the other way too: batches a remote CE publishes are
// acknowledged with the drops *that endpoint's traffic* caused (the bus's
// per-publisher attribution, Range.DispatchDropsFor), never the Range-wide
// total. Acks are coalesced per endpoint — a report carrying fresh drops
// leaves immediately, redundant healthy reports are rate-limited to one
// per ack window with a timer fallback — and, toward endpoints known to
// speak the credit protocol, ride outbound event.batch messages
// (EventBatchBody.Credit) instead of standalone event.batch_ack frames
// when reverse-direction traffic is available to carry them.
type Host struct {
	rng *server.Range
	ep  transport.Endpoint
	clk clock.Clock

	maxBatch  int
	maxDelay  time.Duration
	adaptive  flow.Adaptive
	ackWindow time.Duration

	mu          sync.Mutex
	remotes     map[guid.GUID]*remoteProxy       // guarded by mu; remote CE/CAA → proxy
	out         map[guid.GUID]*flow.Coalescer    // guarded by mu; remote endpoint → outbound coalescer
	acks        map[guid.GUID]*flow.AckCoalescer // guarded by mu; publishing endpoint → coalesced ack owed
	creditAware guid.Set                         // guarded by mu; endpoints that have sent us credit (decode piggybacks)
	failing     guid.Set                         // guarded by mu; endpoints whose last send failed (transition logging)
	closed      bool                             // guarded by mu

	// AcksSent counts standalone event.batch_ack frames shipped;
	// AcksPiggybacked counts credit reports that rode an outbound
	// event.batch instead. Their ratio is the frame saving on
	// bidirectional links.
	AcksSent        metrics.Counter
	AcksPiggybacked metrics.Counter
}

// remoteProxy stands in for a remote component inside the Range.
type remoteProxy struct {
	*entity.Base
	host   *Host
	remote guid.GUID // same GUID: the remote entity is addressable on the net
	app    bool
}

// HandleInput forwards configuration-edge events to the remote CE.
func (p *remoteProxy) HandleInput(e event.Event) {
	p.host.sendEvent(p.remote, e)
}

// HandleInputAll forwards a whole run of configuration-edge events to the
// remote CE: the run is appended to the endpoint's outbound coalescer under
// one lock acquisition instead of one per event. The configuration runtime
// detects this (entity.BatchInput) and wires the edge through
// Mediator.SubscribeBatch.
func (p *remoteProxy) HandleInputAll(events []event.Event) {
	p.host.sendEvents(p.remote, events)
}

// Serve forwards advertisement calls — not supported synchronously over
// this host (remote service calls flow through Connector.Call instead).
func (p *remoteProxy) Serve(op string, args map[string]any) (map[string]any, error) {
	return nil, fmt.Errorf("rangesvc: remote service %q must be called via the connector", op)
}

// NewHost attaches the Range's Context Server to the network under the
// Range's server GUID.
func NewHost(rng *server.Range, net transport.Network, clk clock.Clock) (*Host, error) {
	if clk == nil {
		clk = clock.Real()
	}
	h := &Host{
		rng:         rng,
		clk:         clk,
		maxBatch:    rng.BatchMaxEvents(),
		maxDelay:    rng.BatchMaxDelay(),
		adaptive:    rng.AdaptiveBatching(),
		ackWindow:   rng.BatchMaxDelay(),
		remotes:     make(map[guid.GUID]*remoteProxy),
		out:         make(map[guid.GUID]*flow.Coalescer),
		acks:        make(map[guid.GUID]*flow.AckCoalescer),
		creditAware: guid.NewSet(),
		failing:     guid.NewSet(),
	}
	if h.ackWindow <= 0 {
		h.ackWindow = server.DefaultBatchMaxDelay
	}
	ep, err := net.Attach(rng.ServerID(), h.handle)
	if err != nil {
		return nil, fmt.Errorf("rangesvc: attach host: %w", err)
	}
	h.ep = ep
	// Surface the endpoint's wire-level state — which codec each live
	// connection negotiated and the bytes that crossed the wire — through
	// the Range's stats surfaces (StatsMap / FillMetrics / dispatch.stats).
	if ws, ok := ep.(transport.WireStatser); ok {
		rng.AddStatsSource(func() map[string]float64 {
			st := ws.WireStats()
			out := make(map[string]float64, len(st.Codecs)+2)
			for codec, n := range st.Codecs {
				out["remote.codec."+codec] = float64(n)
			}
			out["remote.bytes_sent"] = float64(st.BytesSent)
			out["remote.bytes_received"] = float64(st.BytesReceived)
			return out
		})
	}
	return h, nil
}

// Announce sends the Fig 5 RS announcement to a newly appeared component's
// endpoint, informing it about the Range's Registrar.
func (h *Host) Announce(to guid.GUID) error {
	body := announceBody{
		Range:     h.rng.ID(),
		Registrar: h.rng.ServerID(), // the CS fronts the Registrar on the wire
		Server:    h.rng.ServerID(),
		Name:      h.rng.Name(),
	}
	m, err := wire.NewMessage(h.rng.ServerID(), to, wire.KindAnnounce, body)
	if err != nil {
		return err
	}
	return h.send(to, m)
}

// Close flushes pending outbound batches and detaches the host endpoint.
func (h *Host) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	queues := make([]*flow.Coalescer, 0, len(h.out))
	for _, q := range h.out {
		queues = append(queues, q)
	}
	h.out = make(map[guid.GUID]*flow.Coalescer)
	acks := make([]*flow.AckCoalescer, 0, len(h.acks))
	for _, a := range h.acks {
		acks = append(acks, a)
	}
	h.acks = make(map[guid.GUID]*flow.AckCoalescer)
	h.mu.Unlock()
	for _, a := range acks {
		a.Stop()
	}
	for _, q := range queues {
		q.Flush()
		q.Discard()
	}
	return h.ep.Close()
}

// handle dispatches inbound wire traffic.
func (h *Host) handle(m wire.Message) {
	switch m.Kind {
	case wire.KindRegister:
		h.handleRegister(m)
	case wire.KindDeregister:
		_ = h.rng.RemoveEntity(m.Src)
		reply, err := m.Reply(wire.KindDeregisterAck, map[string]string{"ok": "true"})
		if err == nil {
			_ = h.send(m.Src, reply)
		}
	case wire.KindHeartbeat:
		_ = h.rng.Registrar().Renew(m.Src)
	case wire.KindQuery:
		h.handleQuery(m)
	case wire.KindEvent, wire.KindEventBatch:
		h.handleEvents(m)
	case wire.KindEventBatchAck:
		h.handleCredit(m)
	case wire.KindServiceCall:
		h.handleServiceCall(m)
	}
}

func (h *Host) handleRegister(m wire.Message) {
	var body registerBody
	ack := registerAckBody{
		Server:   h.rng.ServerID(),
		Mediator: h.rng.ServerID(),
		Lease:    h.rng.Registrar().Lease(),
	}
	if err := m.DecodeBody(&body); err != nil {
		ack.Error = err.Error()
	} else if err := h.register(m.Src, body); err != nil {
		ack.Error = err.Error()
	}
	reply, err := m.Reply(wire.KindRegisterAck, ack)
	if err != nil {
		return
	}
	_ = h.send(m.Src, reply)
}

func (h *Host) register(src guid.GUID, body registerBody) error {
	prof := body.Profile
	prof.Entity = src
	if err := prof.Validate(); err != nil {
		return err
	}
	proxy := &remoteProxy{host: h, remote: src, app: body.Application}
	proxy.Base = entity.NewBaseWithID(src, prof, h.clk)

	h.mu.Lock()
	h.remotes[src] = proxy
	h.mu.Unlock()

	var err error
	if body.Application {
		// Remote CAAs are registered as applications whose ConsumeAll sends
		// whole delivery runs over the wire: the root subscription feeds the
		// proxy a slice per wakeup and the outbound coalescer ingests it
		// under a single lock.
		caa := entity.NewRemoteBatchCAA(src, prof.Name, func(events []event.Event) {
			h.sendEvents(src, events)
		}, h.clk)
		err = h.rng.AddApplication(caa)
	} else {
		err = h.rng.AddEntity(proxy)
	}
	if err != nil {
		return err
	}
	// Remote components renew their own leases via wire heartbeats; the
	// Range's local auto-renewal must not mask their failure.
	h.rng.StopRenewing(src)
	return nil
}

func (h *Host) handleQuery(m wire.Message) {
	var body queryBody
	result := queryResultBody{}
	if err := m.DecodeBody(&body); err != nil {
		result.Error = err.Error()
	} else {
		q, err := query.Decode(body.XML)
		if err != nil {
			result.Error = err.Error()
		} else {
			res, err := h.rng.Submit(q)
			if err != nil {
				result.Error = err.Error()
			} else {
				result.Profiles = res.Profiles
				result.Advertisement = res.Advertisement
				result.Provider = res.Provider
				result.Configuration = res.Configuration
				result.Deferred = res.Deferred
			}
		}
	}
	kind := wire.KindQueryResult
	if result.Error != "" {
		kind = wire.KindQueryError
	}
	reply, err := m.Reply(kind, result)
	if err != nil {
		return
	}
	_ = h.send(m.Src, reply)
}

// handleEvents ingests events published by a remote CE, accepting both the
// coalesced event.batch form and the legacy single-event frame (the two may
// interleave on one connection). The batch body is decoded once: its frames
// feed dispatch and its optional piggybacked credit feeds the endpoint's
// outbound coalescer.
func (h *Host) handleEvents(m wire.Message) {
	if m.Kind == wire.KindEventBatch && m.Batch != nil {
		h.ingestNativeBatch(m)
		return
	}
	var frames []json.RawMessage
	var credit *wire.BatchCredit
	switch m.Kind {
	case wire.KindEvent:
		if len(m.Body) == 0 {
			return
		}
		frames = []json.RawMessage{m.Body}
	case wire.KindEventBatch:
		var body wire.EventBatchBody
		if err := m.DecodeBody(&body); err != nil || len(body.Events) == 0 {
			return
		}
		frames = body.Events
		credit = body.Credit
	default:
		return
	}
	events := make([]event.Event, 0, len(frames))
	for _, f := range frames {
		var e event.Event
		if err := json.Unmarshal(f, &e); err != nil {
			continue
		}
		if e.Source != m.Src {
			continue // a remote may only publish as itself
		}
		// Validate per frame: PublishAll rejects a batch whole, and one bad
		// event must not discard its 63 valid neighbours.
		if err := e.Validate(); err != nil {
			continue
		}
		// Strip any client-supplied Range stamp: Publish/PublishAll preserve
		// non-nil stamps for SCINET cross-range forwarding, so an untrusted
		// wire client could otherwise forge a sibling Range's stamp and dodge
		// Range-filtered subscriptions or the fabric's forwarding tap.
		e.Range = guid.Nil
		events = append(events, e)
	}
	// The whole ingest is attributed to the publishing endpoint, so any
	// drops it causes downstream are counted against it — the figure its
	// acks carry (every event's Source equals m.Src here, but the explicit
	// key documents the contract and survives future relaxations).
	if len(events) > 0 {
		_ = h.rng.PublishAllFrom(m.Src, events)
	}
	// Batched publishers get a flow-credit ack so remote CEs can see the
	// drops their traffic causes — attributed to this endpoint, never the
	// Range-wide total. Acks are coalesced per endpoint: fresh drops leave
	// immediately, redundant healthy reports at most once per ack window
	// (timer fallback), and pending reports ride outbound batches when the
	// reverse direction is hot. Endpoints that have only ever sent legacy
	// single-event frames predate acks and stay silent (they would not
	// understand the reply either).
	h.noteIngest(m.Src, len(frames), m.Kind == wire.KindEventBatch)
	// A publisher that also receives deliveries may piggyback its credit.
	if credit != nil {
		h.applyCredit(m.Src, *credit)
	}
}

// ingestNativeBatch is handleEvents for a batch that arrived decoded
// (binary wire connection or in-process native pass-through): the same
// per-event source check, validation and Range-stamp strip, without the
// per-frame JSON decode. The batch is shared — the memory transport may
// hand one pointer to several receivers — so events are copied by value
// before the stamp strip and payload maps are never touched.
func (h *Host) ingestNativeBatch(m wire.Message) {
	in := m.Batch.Events
	events := make([]event.Event, 0, len(in))
	for i := range in {
		e := in[i]
		if e.Source != m.Src {
			continue // a remote may only publish as itself
		}
		if err := e.Validate(); err != nil {
			continue
		}
		e.Range = guid.Nil
		events = append(events, e)
	}
	if len(events) > 0 {
		_ = h.rng.PublishAllFrom(m.Src, events)
	}
	h.noteIngest(m.Src, len(in), true)
	if m.Batch.Credit != nil {
		h.applyCredit(m.Src, *m.Batch.Credit)
	}
}

// noteIngest records frames ingested from a publishing endpoint with the
// endpoint's ack coalescer (flow.AckCoalescer): the leading report and
// reports whose attributed drop figure moved leave promptly (rate-limited
// to one per ack window even under a drop storm — the figure is
// cumulative, so one frame per window says everything), redundant healthy
// reports ride the window timer, and a pending report is claimed by the
// next outbound batch that can carry it. batch marks the message form:
// only endpoints that have sent at least one event.batch are ack-aware.
func (h *Host) noteIngest(src guid.GUID, frames int, batch bool) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	a := h.acks[src]
	if a == nil {
		if !batch {
			h.mu.Unlock()
			return // legacy-only peer: never ack
		}
		a = flow.NewAckCoalescer(flow.AckConfig{
			Clock:  h.clk,
			Window: h.ackWindow,
			Figure: func() uint64 { return h.rng.DispatchDropsFor(src) },
			Send:   func(events int) bool { return h.sendAck(src, events) },
		})
		h.acks[src] = a
	}
	h.mu.Unlock()
	a.Note(frames)
}

// ackCredit builds the credit report an ack to one endpoint carries: the
// drops attributed to that endpoint's traffic, and an unknown queue depth
// (dispatch rings are per subscription, not one queue).
func (h *Host) ackCredit(to guid.GUID, events int) wire.BatchCredit {
	return wire.BatchCredit{
		Events:    events,
		Dropped:   h.rng.DispatchDropsFor(to),
		QueueFree: -1,
	}
}

// sendAck ships one standalone event.batch_ack frame, reporting success.
func (h *Host) sendAck(to guid.GUID, events int) bool {
	ack, err := wire.NewEventBatchAck(h.rng.ServerID(), to, h.ackCredit(to, events))
	if err != nil {
		return true // unencodable: dropping the report is all we can do
	}
	if h.send(to, ack) != nil {
		return false
	}
	h.AcksSent.Inc()
	return true
}

// takePiggybackCredit claims the pending credit report owed to an endpoint
// for carriage on an outbound event.batch, suppressing the standalone ack
// frame. Only endpoints that have demonstrated credit awareness (sent us a
// credit report of their own) qualify: an older peer reads credit solely
// from standalone acks, and a report piggybacked to it would be lost.
func (h *Host) takePiggybackCredit(to guid.GUID) *wire.BatchCredit {
	h.mu.Lock()
	a := h.acks[to]
	aware := h.creditAware.Has(to) && !h.closed
	h.mu.Unlock()
	if a == nil || !aware {
		return nil
	}
	events, ok := a.Take()
	if !ok {
		return nil
	}
	credit := h.ackCredit(to, events)
	return &credit
}

// handleCredit ingests a standalone event.batch_ack from a remote receiver.
func (h *Host) handleCredit(m wire.Message) {
	credit, ok := m.BatchCreditInfo()
	if !ok {
		return
	}
	h.applyCredit(m.Src, credit)
}

// applyCredit routes a receiver flow-credit report into the reporting
// endpoint's outbound coalescer, which throttles its flush rate while the
// credit stays collapsed. Reports from endpoints we never coalesce to are
// dropped — a credit must not create a queue. Any report also marks the
// endpoint credit-aware, unlocking piggybacked acks toward it.
func (h *Host) applyCredit(from guid.GUID, credit wire.BatchCredit) {
	h.mu.Lock()
	h.creditAware.Add(from)
	q := h.out[from]
	h.mu.Unlock()
	if q != nil {
		q.UpdateCredit(credit.Dropped, credit.QueueFree)
	}
}

func (h *Host) handleServiceCall(m wire.Message) {
	var body serviceCallBody
	reply := serviceReplyBody{}
	if err := m.DecodeBody(&body); err != nil {
		reply.Error = err.Error()
	} else {
		var out map[string]any
		var err error
		if body.Provider == h.rng.ServerID() {
			// Calls addressed to the Context Server itself are
			// infrastructure operations, not entity advertisements.
			out, err = h.serveInfra(body.Op)
		} else {
			out, err = h.rng.CallService(body.Provider, body.Op, body.Args)
		}
		if err != nil {
			reply.Error = err.Error()
		} else {
			reply.Result = out
		}
	}
	r, err := m.Reply(wire.KindServiceReply, reply)
	if err != nil {
		return
	}
	_ = h.send(m.Src, r)
}

// serveInfra answers service calls addressed to the Context Server: today
// "dispatch.stats", the Event Mediator's dispatch health (publish/deliver/
// drop totals, live subscriptions, and how much of the dispatch work the
// subscription index resolved without wildcard scanning). Values are
// float64 so they survive the JSON wire round trip unchanged.
func (h *Host) serveInfra(op string) (map[string]any, error) {
	switch op {
	case "dispatch.stats":
		stats := h.rng.StatsMap()
		out := make(map[string]any, len(stats))
		for k, v := range stats {
			out[k] = v
		}
		return out, nil
	default:
		return nil, fmt.Errorf("rangesvc: unknown infrastructure op %q", op)
	}
}

// sendEvent ships an event to a remote component, through the endpoint's
// coalescer when batching is enabled.
func (h *Host) sendEvent(to guid.GUID, e event.Event) {
	if h.maxBatch <= 1 {
		m, err := wire.NewMessage(h.rng.ServerID(), to, wire.KindEvent, e)
		if err != nil {
			return
		}
		if h.send(to, m) == nil {
			h.rng.RemoteBatchesSent.Inc()
			h.rng.RemoteEventsSent.Inc()
		}
		return
	}
	if q := h.queueFor(to); q != nil {
		q.Add(e)
	}
}

// sendEvents ships a run of events to one remote component. With batching
// enabled the whole run enters the endpoint's coalescer under one lock
// acquisition; otherwise each event ships as its own legacy frame.
func (h *Host) sendEvents(to guid.GUID, events []event.Event) {
	if len(events) == 0 {
		return
	}
	if h.maxBatch <= 1 {
		for i := range events {
			h.sendEvent(to, events[i])
		}
		return
	}
	if q := h.queueFor(to); q != nil {
		q.AddAll(events)
	}
}

// queueFor returns the destination's coalescer, creating it on first use
// (nil once the host has closed). Every endpoint's coalescer shares the
// Range's flow stats sink, so backpressure across all endpoints reads out
// of one set of remote.backpressure.* gauges.
func (h *Host) queueFor(to guid.GUID) *flow.Coalescer {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	q, ok := h.out[to]
	if !ok {
		q = flow.New(flow.Config{
			Clock:    h.clk,
			MaxBatch: h.maxBatch,
			MaxDelay: h.maxDelay,
			Adaptive: h.adaptive,
			Fair:     h.rng.FairFlush(),
			Stats:    h.rng.FlowStats(),
			Send:     func(batch []event.Event) { h.sendBatch(to, batch) },
		})
		h.out[to] = q
	}
	return q
}

// sendBatch encodes a coalesced run of events into one event.batch wire
// message, folding in any pending flow-credit ack owed to the destination —
// on a hot bidirectional link the reverse traffic carries the credit and
// the standalone ack frame is never paid.
func (h *Host) sendBatch(to guid.GUID, events []event.Event) {
	if len(events) == 0 {
		return
	}
	// The coalescer's flush slice aliases its pending buffer and is reused
	// after this callback returns; the native batch escapes with the wire
	// message, so it gets its own storage. Encoding happens at the wire —
	// binary connections ship the batch contiguously, JSON and in-process
	// legacy peers get it materialized into the classic body.
	owned := make([]event.Event, len(events))
	copy(owned, events)
	credit := h.takePiggybackCredit(to)
	m, err := wire.NewNativeEventBatch(h.rng.ServerID(), to, owned, credit)
	if err != nil {
		return
	}
	if h.send(to, m) == nil {
		h.rng.RemoteBatchesSent.Inc()
		h.rng.RemoteEventsSent.Add(uint64(len(owned)))
		if credit != nil {
			h.AcksPiggybacked.Inc()
		}
	} else if credit != nil {
		// The claimed report must survive the failed carrier: re-note it so
		// the standalone path retries.
		h.mu.Lock()
		a := h.acks[to]
		h.mu.Unlock()
		if a != nil {
			a.Note(credit.Events)
		}
	}
}

// send ships one wire message, counting failures in the Range's
// RemoteSendFailures metric and logging once per endpoint health
// transition (working → failing and back) rather than per message.
func (h *Host) send(to guid.GUID, m wire.Message) error {
	err := h.ep.Send(m)
	h.mu.Lock()
	was := h.failing.Has(to)
	if err != nil {
		h.failing.Add(to)
	} else {
		h.failing.Remove(to)
	}
	h.mu.Unlock()
	if err != nil {
		h.rng.RemoteSendFailures.Inc()
		if !was {
			log.Printf("rangesvc: sends to %s failing: %v", to.Short(), err)
		}
	} else if was {
		log.Printf("rangesvc: sends to %s recovered", to.Short())
	}
	return err
}

// Connector is the client side of the Fig 5 sequence for a remote CE or
// CAA. Construct with NewConnector (per-event delivery) or
// NewBatchConnector (whole-backlog slices), then Register.
//
// Pushed events (query results, configuration inputs) land in a bounded
// delivery queue drained by a dedicated goroutine, so a slow handler can
// never stall the transport; when the queue overflows, the oldest events
// are dropped (context data is freshest-wins) and counted. The queue may
// size itself from the observed arrival rate (EnableAdaptiveQueue, backed
// by flow.RateTracker): idle connectors keep a shallow queue and low
// staleness, hot ones grow headroom for bursts up to the configured
// ceiling.
//
// Received event.batch messages are acknowledged with the connector's flow
// credit — the cumulative drop count and remaining queue capacity — which
// the Range Service feeds into that endpoint's outbound coalescer to
// throttle its flush rate while the connector is overloaded. Acks are
// coalesced: a report carrying fresh drops leaves immediately, redundant
// healthy reports at most once per ack window (timer fallback), and a
// pending report rides the next published batch (EventBatchBody.Credit)
// instead of paying a standalone event.batch_ack frame.
type Connector struct {
	id   guid.GUID
	name string
	ep   transport.Endpoint
	clk  clock.Clock

	mu          sync.Mutex
	server      guid.GUID     // guarded by mu
	lease       time.Duration // guarded by mu
	announced   chan announceBody
	waiters     map[guid.GUID]chan wire.Message // guarded by mu
	onEvent     func(event.Event)
	onBatch     func([]event.Event)
	dq          []event.Event // guarded by mu; bounded delivery queue (onEvent/onBatch != nil)
	dqCap       int           // guarded by mu
	dqWake      chan struct{}
	deliverDone chan struct{}     // non-nil iff deliverLoop was started; closed when it exits
	dqDropped   uint64            // guarded by mu; cumulative overflow drops, reported in acks
	dqRate      *flow.RateTracker // guarded by mu; non-nil: adaptive queue sizing
	dqMin       int               // guarded by mu
	dqMax       int               // guarded by mu
	credit      wire.BatchCredit  // guarded by mu
	hasCredit   bool              // guarded by mu
	hbTimer     clock.Timer       // guarded by mu
	closed      bool              // guarded by mu

	// Coalesced ack state, one flow.AckCoalescer per delivering endpoint
	// (acks answer the sender of the batch they cover).
	acks      map[guid.GUID]*flow.AckCoalescer
	acksSent  metrics.Counter
	acksPiggy metrics.Counter
}

// DefaultDeliveryQueueLen is the connector delivery queue capacity when
// none is set.
const DefaultDeliveryQueueLen = 1024

// connAckWindow is the connector's ack-coalescing window: redundant healthy
// credit reports are rate-limited to one per window (reports carrying new
// drops always leave immediately).
const connAckWindow = server.DefaultBatchMaxDelay

// adaptiveQueueWindow is how much traffic, at the observed arrival rate, an
// adaptively sized delivery queue provisions for: bursts shorter than this
// window at the estimated rate fit without drops.
const adaptiveQueueWindow = 50 * time.Millisecond

// Errors.
var (
	ErrNotRegistered = errors.New("rangesvc: not registered with a range")
	ErrTimeout       = errors.New("rangesvc: request timed out")
)

// RequestTimeout bounds every synchronous round trip.
const RequestTimeout = 5 * time.Second

// NewConnector attaches a component endpoint to the network. onEvent
// receives pushed events (query results for CAAs, configuration inputs for
// CEs); it may be nil.
func NewConnector(id guid.GUID, name string, net transport.Network, onEvent func(event.Event), clk clock.Clock) (*Connector, error) {
	return newConnector(id, name, net, onEvent, nil, clk)
}

// NewBatchConnector attaches a component endpoint whose handler consumes
// the whole delivery backlog as one slice per wakeup — the same batch-fed
// edge the mediator gives local consumers — so per-event overhead (locks,
// encoding, downstream writes) amortises across a burst. The slice is
// reused between invocations and must not be retained.
func NewBatchConnector(id guid.GUID, name string, net transport.Network, onBatch func([]event.Event), clk clock.Clock) (*Connector, error) {
	return newConnector(id, name, net, nil, onBatch, clk)
}

func newConnector(id guid.GUID, name string, net transport.Network, onEvent func(event.Event), onBatch func([]event.Event), clk clock.Clock) (*Connector, error) {
	if clk == nil {
		clk = clock.Real()
	}
	c := &Connector{
		id:        id,
		name:      name,
		clk:       clk,
		announced: make(chan announceBody, 1),
		waiters:   make(map[guid.GUID]chan wire.Message),
		onEvent:   onEvent,
		onBatch:   onBatch,
		dqCap:     DefaultDeliveryQueueLen,
		dqWake:    make(chan struct{}, 1),
		acks:      make(map[guid.GUID]*flow.AckCoalescer),
	}
	ep, err := net.Attach(id, c.handle)
	if err != nil {
		return nil, fmt.Errorf("rangesvc: attach connector: %w", err)
	}
	c.ep = ep
	if onEvent != nil || onBatch != nil {
		c.deliverDone = make(chan struct{})
		go c.deliverLoop()
	}
	return c, nil
}

// SetDeliveryQueueCap bounds the delivery queue (events awaiting the
// handler) at a fixed capacity, disabling adaptive sizing. Shrinking below
// the current backlog drops the oldest surplus.
func (c *Connector) SetDeliveryQueueCap(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	c.dqRate = nil
	c.setQueueCapLocked(n)
	c.mu.Unlock()
}

// EnableAdaptiveQueue sizes the delivery queue from the observed arrival
// rate instead of a fixed cap: capacity = clamp(rate × adaptiveQueueWindow,
// min, max), re-derived as deliveries arrive, reusing the flow layer's
// EWMA rate tracker (halfLife ≤ 0 means flow.DefaultRateHalfLife). A hot
// connector grows burst headroom toward max; an idle one shrinks toward
// min, bounding how stale a queued event can get before freshest-wins
// eviction.
func (c *Connector) EnableAdaptiveQueue(min, max int, halfLife time.Duration) {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	c.mu.Lock()
	c.dqRate = flow.NewRateTracker(halfLife)
	c.dqMin, c.dqMax = min, max
	c.setQueueCapLocked(min)
	c.mu.Unlock()
}

// setQueueCapLocked applies a new queue bound, evicting the oldest surplus.
// Callers hold c.mu.
func (c *Connector) setQueueCapLocked(n int) {
	c.dqCap = n
	if over := len(c.dq) - n; over > 0 {
		c.dq = append(c.dq[:0], c.dq[over:]...)
		c.dqDropped += uint64(over)
	}
}

// DeliveryQueueCap reports the current (possibly rate-derived) queue bound.
func (c *Connector) DeliveryQueueCap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dqCap
}

// DeliveryDrops reports how many pushed events overflowed the delivery
// queue — the figure acked back to the Range Service as flow credit.
func (c *Connector) DeliveryDrops() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dqDropped
}

// RemoteCredit returns the last flow-credit report received from the
// Range Service (acks to this connector's published batches, standalone or
// piggybacked on a delivery batch): the drops this connector's own traffic
// caused in the Range. ok is false until a report arrives — old hosts
// never send one.
func (c *Connector) RemoteCredit() (wire.BatchCredit, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.credit, c.hasCredit
}

// AcksSent reports how many standalone event.batch_ack frames this
// connector has shipped; AcksPiggybacked how many credit reports rode a
// published batch instead.
func (c *Connector) AcksSent() uint64        { return c.acksSent.Value() }
func (c *Connector) AcksPiggybacked() uint64 { return c.acksPiggy.Value() }

// noteDeliveryAck records an owed flow-credit report after ingesting one
// delivery message from the given endpoint, through that endpoint's ack
// coalescer: the leading report and reports whose drop figure moved leave
// promptly (one per window even under a drop storm), redundant healthy
// reports ride the window timer or the next published batch that can carry
// them.
func (c *Connector) noteDeliveryAck(from guid.GUID, frames int) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	a := c.acks[from]
	if a == nil {
		a = flow.NewAckCoalescer(flow.AckConfig{
			Clock:  c.clk,
			Window: connAckWindow,
			Figure: func() uint64 { return c.DeliveryDrops() },
			Send:   func(events int) bool { return c.sendAck(from, events) },
		})
		c.acks[from] = a
	}
	c.mu.Unlock()
	a.Note(frames)
}

// deliveryCredit builds the credit report an ack carries: the delivery
// queue's cumulative drops and remaining capacity.
func (c *Connector) deliveryCredit(events int) wire.BatchCredit {
	c.mu.Lock()
	defer c.mu.Unlock()
	return wire.BatchCredit{
		Events:    events,
		Dropped:   c.dqDropped,
		QueueFree: c.dqCap - len(c.dq),
	}
}

// sendAck ships one standalone event.batch_ack frame, reporting success.
func (c *Connector) sendAck(to guid.GUID, events int) bool {
	ack, err := wire.NewEventBatchAck(c.id, to, c.deliveryCredit(events))
	if err != nil {
		return true // unencodable: dropping the report is all we can do
	}
	if c.ep.Send(ack) != nil {
		return false
	}
	c.acksSent.Inc()
	return true
}

// takePiggybackCredit claims the report pending toward the given endpoint
// for carriage on a published batch — a report is never piggybacked past
// its addressee; per-endpoint coalescers make that structural. (Hosts have
// always decoded EventBatchBody.Credit, so no capability gate is needed in
// this direction.)
func (c *Connector) takePiggybackCredit(to guid.GUID) *wire.BatchCredit {
	c.mu.Lock()
	a := c.acks[to]
	closed := c.closed
	c.mu.Unlock()
	if a == nil || closed {
		return nil
	}
	events, ok := a.Take()
	if !ok {
		return nil
	}
	credit := c.deliveryCredit(events)
	return &credit
}

// enqueueDeliveries admits pushed events to the bounded delivery queue,
// dropping the oldest (freshest-wins, like the mediator's rings) on
// overflow. With adaptive sizing enabled the bound is re-derived from the
// arrival-rate estimate first. The ack path reads the queue state live
// (deliveryCredit) at report time, not here.
func (c *Connector) enqueueDeliveries(events []event.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if c.dqRate != nil && c.dqRate.Observe(len(events), c.clk.Now()) {
		want := int(c.dqRate.Rate() * adaptiveQueueWindow.Seconds())
		if want < c.dqMin {
			want = c.dqMin
		}
		if want > c.dqMax {
			want = c.dqMax
		}
		if want != c.dqCap {
			c.setQueueCapLocked(want)
		}
	}
	if over := len(events) - c.dqCap; over > 0 {
		// The burst alone exceeds the queue: only its freshest tail can
		// survive, everything older is dropped unseen.
		c.dqDropped += uint64(over + len(c.dq))
		c.dq = c.dq[:0]
		events = events[over:]
	} else if over := len(c.dq) + len(events) - c.dqCap; over > 0 {
		c.dq = append(c.dq[:0], c.dq[over:]...)
		c.dqDropped += uint64(over)
	}
	c.dq = append(c.dq, events...)
	select {
	case c.dqWake <- struct{}{}:
	default:
	}
}

// deliverLoop drains the delivery queue whole-backlog per wakeup into the
// batch handler when one is set (one slice per drain, the mediator's
// batch-fed edge), or event by event into onEvent.
func (c *Connector) deliverLoop() {
	defer close(c.deliverDone)
	var buf []event.Event
	for range c.dqWake {
		for {
			c.mu.Lock()
			if len(c.dq) == 0 {
				c.mu.Unlock()
				break
			}
			buf = append(buf[:0], c.dq...)
			c.dq = c.dq[:0]
			c.mu.Unlock()
			if c.onBatch != nil {
				c.onBatch(buf)
				continue
			}
			for i := range buf {
				c.onEvent(buf[i])
			}
		}
	}
}

// ID returns the component's GUID.
func (c *Connector) ID() guid.GUID { return c.id }

// ServerID returns the Context Server handle received at registration.
func (c *Connector) ServerID() guid.GUID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.server
}

// AwaitAnnounce blocks until a Range Service announcement arrives (the
// entity "starting up" side of Fig 5).
func (c *Connector) AwaitAnnounce(timeout time.Duration) (rangeID, serverID guid.GUID, err error) {
	select {
	case a := <-c.announced:
		return a.Range, a.Server, nil
	case <-c.clk.After(timeout):
		return guid.Nil, guid.Nil, ErrTimeout
	}
}

// Register completes the Fig 5 sequence against the given Context Server:
// it sends the profile, receives the CS/Mediator handles and the lease, and
// starts heartbeating.
func (c *Connector) Register(serverID guid.GUID, prof profile.Profile, application bool) error {
	prof.Entity = c.id
	prof.Name = c.name
	m, err := wire.NewMessage(c.id, serverID, wire.KindRegister, registerBody{
		Profile:     prof,
		Application: application,
	})
	if err != nil {
		return err
	}
	reply, err := c.roundTrip(m)
	if err != nil {
		return err
	}
	var ack registerAckBody
	if err := reply.DecodeBody(&ack); err != nil {
		return err
	}
	if ack.Error != "" {
		return fmt.Errorf("rangesvc: registration rejected: %s", ack.Error)
	}
	c.mu.Lock()
	c.server = ack.Server
	c.lease = ack.Lease
	c.mu.Unlock()
	c.scheduleHeartbeat()
	return nil
}

// Deregister announces clean departure.
func (c *Connector) Deregister() error {
	srv := c.ServerID()
	if srv.IsNil() {
		return ErrNotRegistered
	}
	m, err := wire.NewMessage(c.id, srv, wire.KindDeregister, map[string]string{"bye": "true"})
	if err != nil {
		return err
	}
	_, err = c.roundTrip(m)
	c.mu.Lock()
	c.server = guid.Nil
	if c.hbTimer != nil {
		c.hbTimer.Stop()
	}
	c.mu.Unlock()
	return err
}

// Submit sends a query (Fig 6 XML on the wire) and returns the result.
func (c *Connector) Submit(q query.Query) (*queryResultBody, error) {
	srv := c.ServerID()
	if srv.IsNil() {
		return nil, ErrNotRegistered
	}
	xmlData, err := q.Encode()
	if err != nil {
		return nil, err
	}
	m, err := wire.NewMessage(c.id, srv, wire.KindQuery, queryBody{XML: xmlData})
	if err != nil {
		return nil, err
	}
	reply, err := c.roundTrip(m)
	if err != nil {
		return nil, err
	}
	var res queryResultBody
	if err := reply.DecodeBody(&res); err != nil {
		return nil, err
	}
	if res.Error != "" {
		return nil, fmt.Errorf("rangesvc: query failed: %s", res.Error)
	}
	return &res, nil
}

// Call invokes an advertisement operation on a provider in the Range.
func (c *Connector) Call(provider guid.GUID, op string, args map[string]any) (map[string]any, error) {
	srv := c.ServerID()
	if srv.IsNil() {
		return nil, ErrNotRegistered
	}
	m, err := wire.NewMessage(c.id, srv, wire.KindServiceCall, serviceCallBody{
		Provider: provider,
		Op:       op,
		Args:     args,
	})
	if err != nil {
		return nil, err
	}
	reply, err := c.roundTrip(m)
	if err != nil {
		return nil, err
	}
	var res serviceReplyBody
	if err := reply.DecodeBody(&res); err != nil {
		return nil, err
	}
	if res.Error != "" {
		return nil, fmt.Errorf("rangesvc: service call failed: %s", res.Error)
	}
	return res.Result, nil
}

// Publish sends an event to the Range's mediator (remote CE emission).
func (c *Connector) Publish(e event.Event) error {
	srv := c.ServerID()
	if srv.IsNil() {
		return ErrNotRegistered
	}
	m, err := wire.NewMessage(c.id, srv, wire.KindEvent, e)
	if err != nil {
		return err
	}
	return c.ep.Send(m)
}

// PublishAll sends a batch of events to the Range's mediator as one
// event.batch wire message; the Range ingests it through the bus's batched
// dispatch path. A pending delivery-credit report rides along in the batch
// body (suppressing its standalone ack frame) when the batch heads to the
// endpoint the report answers. An empty batch is a no-op.
func (c *Connector) PublishAll(events []event.Event) error {
	if len(events) == 0 {
		return nil
	}
	srv := c.ServerID()
	if srv.IsNil() {
		return ErrNotRegistered
	}
	// The caller keeps its slice; the native batch escapes with the message.
	owned := make([]event.Event, len(events))
	copy(owned, events)
	credit := c.takePiggybackCredit(srv)
	m, err := wire.NewNativeEventBatch(c.id, srv, owned, credit)
	if err != nil {
		return err
	}
	err = c.ep.Send(m)
	if credit != nil {
		if err == nil {
			c.acksPiggy.Inc()
		} else {
			// The claimed report must survive the failed carrier.
			c.mu.Lock()
			a := c.acks[srv]
			c.mu.Unlock()
			if a != nil {
				a.Note(credit.Events)
			}
		}
	}
	return err
}

// Close detaches the connector. Events still waiting in the delivery queue
// are discarded deterministically and counted as delivery drops (the
// consumer is gone; feeding a closing handler would race its teardown), the
// drain goroutine is woken so it can observe the closed channel and exit
// rather than parking forever, and DeliveryDrops is stable from here on —
// no post-close enqueue or drain mutates it.
func (c *Connector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	if c.hbTimer != nil {
		c.hbTimer.Stop()
	}
	acks := make([]*flow.AckCoalescer, 0, len(c.acks))
	for _, a := range c.acks {
		acks = append(acks, a)
	}
	c.acks = make(map[guid.GUID]*flow.AckCoalescer)
	c.dqDropped += uint64(len(c.dq))
	c.dq = nil
	close(c.dqWake)
	c.mu.Unlock()
	// Join the delivery goroutine before tearing the endpoint down: a
	// Close must guarantee no handler invocation is in flight (or will
	// start) once it returns. The loop exits promptly — Close already
	// emptied the queue and closed the wakeup channel — so this waits
	// only for an in-flight handler call to finish.
	if c.deliverDone != nil {
		<-c.deliverDone
	}
	for _, a := range acks {
		a.Stop()
	}
	return c.ep.Close()
}

// storeRemoteCredit records the Range Service's latest flow-credit report
// for this connector's published traffic (RemoteCredit).
func (c *Connector) storeRemoteCredit(credit wire.BatchCredit) {
	c.mu.Lock()
	c.credit = credit
	c.hasCredit = true
	c.mu.Unlock()
}

func (c *Connector) scheduleHeartbeat() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.lease <= 0 {
		return
	}
	every := c.lease / 3
	c.hbTimer = c.clk.AfterFunc(every, func() {
		srv := c.ServerID()
		if !srv.IsNil() {
			if m, err := wire.NewMessage(c.id, srv, wire.KindHeartbeat, map[string]string{"hb": "1"}); err == nil {
				_ = c.ep.Send(m)
			}
		}
		c.scheduleHeartbeat()
	})
}

func (c *Connector) roundTrip(m wire.Message) (wire.Message, error) {
	corr := guid.New(guid.KindQuery)
	m.Corr = corr
	ch := make(chan wire.Message, 1)
	c.mu.Lock()
	c.waiters[corr] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, corr)
		c.mu.Unlock()
	}()
	if err := c.ep.Send(m); err != nil {
		return wire.Message{}, err
	}
	select {
	case reply := <-ch:
		return reply, nil
	case <-c.clk.After(RequestTimeout):
		return wire.Message{}, ErrTimeout
	}
}

func (c *Connector) handle(m wire.Message) {
	switch m.Kind {
	case wire.KindAnnounce:
		var a announceBody
		if err := m.DecodeBody(&a); err == nil {
			select {
			case c.announced <- a:
			default:
			}
		}
	case wire.KindEvent, wire.KindEventBatch:
		// A delivery batch may itself piggyback the host's ack to our
		// published batches — read it before the events.
		if credit, ok := m.BatchCreditInfo(); ok {
			c.storeRemoteCredit(credit)
		}
		if c.onEvent == nil && c.onBatch == nil {
			return
		}
		var events []event.Event
		var got int
		if m.Batch != nil {
			// Native delivery: the queue copies event values on admission and
			// never mutates the slice, so the shared batch is read directly.
			events = m.Batch.Events
			got = len(events)
		} else {
			frames, err := m.EventFrames()
			if err != nil {
				return
			}
			got = len(frames)
			events = make([]event.Event, 0, len(frames))
			for _, f := range frames {
				var e event.Event
				if err := json.Unmarshal(f, &e); err == nil {
					events = append(events, e)
				}
			}
		}
		c.enqueueDeliveries(events)
		// Acknowledge with flow credit so the host's coalescer can match its
		// flush rate to what this connector absorbs — coalesced per the ack
		// window, urgent on fresh drops, piggybacked on the next publish
		// when one beats the timer. Legacy single-event frames stay silent:
		// their senders predate acks.
		if m.Kind == wire.KindEventBatch {
			c.noteDeliveryAck(m.Src, got)
		}
	case wire.KindEventBatchAck:
		if credit, ok := m.BatchCreditInfo(); ok {
			c.storeRemoteCredit(credit)
		}
	default:
		if !m.Corr.IsNil() {
			c.mu.Lock()
			ch, ok := c.waiters[m.Corr]
			c.mu.Unlock()
			if ok {
				select {
				case ch <- m:
				default:
				}
			}
		}
	}
}
