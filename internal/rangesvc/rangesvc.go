// Package rangesvc implements the Range Service and the discovery sequence
// of the paper's Fig 5 over the transport layer.
//
// "When a Context Server starts up, it deploys a Range Service (RS) to all
// the machines within its jurisdiction. The RS performs the task of
// listening for CAAs or CEs starting up in order to inform them about the
// Range's Registrar. The CAA/CE can then contact the Registrar in order to
// gain access to the infrastructure. Upon completion of the registration
// process, the Registrar will return the Context Server details to a CAA
// (in order to submit queries) or the Event Mediator details to a CE (in
// order to publish events)."
//
// Host is the server side: it attaches the Range Service, Registrar-facing
// and Context-Server-facing message handling to a transport endpoint owned
// by a Range. Remote CEs are represented inside the Range by proxy
// components whose emitted events arrive over the wire and whose
// configuration inputs are forwarded back out, so remote entities
// participate in configurations exactly like local ones.
//
// Connector is the client side used by remote processes (cmd/sciquery,
// remote sensors): discover → register → submit queries / publish events /
// receive deliveries.
package rangesvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"sci/internal/clock"
	"sci/internal/entity"
	"sci/internal/event"
	"sci/internal/flow"
	"sci/internal/guid"
	"sci/internal/profile"
	"sci/internal/query"
	"sci/internal/server"
	"sci/internal/transport"
	"sci/internal/wire"
)

// Wire body types for the Fig 5 protocol.

type announceBody struct {
	// Range and Registrar identify the Range; Server and Mediator are the
	// handles returned after registration per Fig 5 (carried up-front too,
	// which saves a round trip without changing the sequence's semantics).
	Range     guid.GUID `json:"range"`
	Registrar guid.GUID `json:"registrar"`
	Server    guid.GUID `json:"server"`
	Name      string    `json:"name"`
}

type registerBody struct {
	Profile profile.Profile `json:"profile"`
	// Application marks CAAs (they receive query results, not inputs).
	Application bool `json:"application"`
}

type registerAckBody struct {
	// Server is the Context Server GUID (for queries), Mediator the event
	// intake GUID (for publication), per the paper's sequence.
	Server   guid.GUID     `json:"server"`
	Mediator guid.GUID     `json:"mediator"`
	Lease    time.Duration `json:"lease"`
	Error    string        `json:"error,omitempty"`
}

type queryBody struct {
	XML []byte `json:"xml"` // the Fig 6 XML form
}

type queryResultBody struct {
	Profiles      []profile.Profile      `json:"profiles,omitempty"`
	Advertisement *profile.Advertisement `json:"advertisement,omitempty"`
	Provider      guid.GUID              `json:"provider,omitzero"`
	Configuration guid.GUID              `json:"configuration,omitzero"`
	Deferred      bool                   `json:"deferred,omitempty"`
	Error         string                 `json:"error,omitempty"`
}

type serviceCallBody struct {
	Provider guid.GUID      `json:"provider"`
	Op       string         `json:"op"`
	Args     map[string]any `json:"args,omitempty"`
}

type serviceReplyBody struct {
	Result map[string]any `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// Host serves a Range over a transport endpoint. Construct with NewHost.
//
// Outbound event deliveries to remote components flow through a
// per-endpoint flow.Coalescer when the Range's BatchMaxEvents enables it:
// up to BatchMaxEvents events bound for one remote endpoint are collected
// into a single event.batch wire message, with a BatchMaxDelay timer
// flushing partially filled batches so a trickle never stalls. N
// deliveries to one endpoint therefore cost ⌈N/BatchMaxEvents⌉ wire
// messages instead of N — and with RangeConfig.AdaptiveBatching the
// per-endpoint batch size and delay follow each endpoint's observed
// arrival rate between the configured floors and those ceilings. Remote
// receivers acknowledge event.batch messages with flow credit
// (wire.BatchCredit); a collapsing credit throttles that endpoint's
// coalescer flush rate, surfaced through the Range's
// remote.backpressure.* gauges.
type Host struct {
	rng *server.Range
	ep  transport.Endpoint
	clk clock.Clock

	maxBatch int
	maxDelay time.Duration
	adaptive flow.Adaptive

	mu      sync.Mutex
	remotes map[guid.GUID]*remoteProxy    // remote CE/CAA → proxy
	out     map[guid.GUID]*flow.Coalescer // remote endpoint → outbound coalescer
	failing guid.Set                      // endpoints whose last send failed (transition logging)
	closed  bool
}

// remoteProxy stands in for a remote component inside the Range.
type remoteProxy struct {
	*entity.Base
	host   *Host
	remote guid.GUID // same GUID: the remote entity is addressable on the net
	app    bool
}

// HandleInput forwards configuration-edge events to the remote CE.
func (p *remoteProxy) HandleInput(e event.Event) {
	p.host.sendEvent(p.remote, e)
}

// HandleInputAll forwards a whole run of configuration-edge events to the
// remote CE: the run is appended to the endpoint's outbound coalescer under
// one lock acquisition instead of one per event. The configuration runtime
// detects this (entity.BatchInput) and wires the edge through
// Mediator.SubscribeBatch.
func (p *remoteProxy) HandleInputAll(events []event.Event) {
	p.host.sendEvents(p.remote, events)
}

// Serve forwards advertisement calls — not supported synchronously over
// this host (remote service calls flow through Connector.Call instead).
func (p *remoteProxy) Serve(op string, args map[string]any) (map[string]any, error) {
	return nil, fmt.Errorf("rangesvc: remote service %q must be called via the connector", op)
}

// NewHost attaches the Range's Context Server to the network under the
// Range's server GUID.
func NewHost(rng *server.Range, net transport.Network, clk clock.Clock) (*Host, error) {
	if clk == nil {
		clk = clock.Real()
	}
	h := &Host{
		rng:      rng,
		clk:      clk,
		maxBatch: rng.BatchMaxEvents(),
		maxDelay: rng.BatchMaxDelay(),
		adaptive: rng.AdaptiveBatching(),
		remotes:  make(map[guid.GUID]*remoteProxy),
		out:      make(map[guid.GUID]*flow.Coalescer),
		failing:  guid.NewSet(),
	}
	ep, err := net.Attach(rng.ServerID(), h.handle)
	if err != nil {
		return nil, fmt.Errorf("rangesvc: attach host: %w", err)
	}
	h.ep = ep
	return h, nil
}

// Announce sends the Fig 5 RS announcement to a newly appeared component's
// endpoint, informing it about the Range's Registrar.
func (h *Host) Announce(to guid.GUID) error {
	body := announceBody{
		Range:     h.rng.ID(),
		Registrar: h.rng.ServerID(), // the CS fronts the Registrar on the wire
		Server:    h.rng.ServerID(),
		Name:      h.rng.Name(),
	}
	m, err := wire.NewMessage(h.rng.ServerID(), to, wire.KindAnnounce, body)
	if err != nil {
		return err
	}
	return h.send(to, m)
}

// Close flushes pending outbound batches and detaches the host endpoint.
func (h *Host) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	queues := make([]*flow.Coalescer, 0, len(h.out))
	for _, q := range h.out {
		queues = append(queues, q)
	}
	h.out = make(map[guid.GUID]*flow.Coalescer)
	h.mu.Unlock()
	for _, q := range queues {
		q.Flush()
		q.Discard()
	}
	return h.ep.Close()
}

// handle dispatches inbound wire traffic.
func (h *Host) handle(m wire.Message) {
	switch m.Kind {
	case wire.KindRegister:
		h.handleRegister(m)
	case wire.KindDeregister:
		_ = h.rng.RemoveEntity(m.Src)
		reply, err := m.Reply(wire.KindDeregisterAck, map[string]string{"ok": "true"})
		if err == nil {
			_ = h.send(m.Src, reply)
		}
	case wire.KindHeartbeat:
		_ = h.rng.Registrar().Renew(m.Src)
	case wire.KindQuery:
		h.handleQuery(m)
	case wire.KindEvent, wire.KindEventBatch:
		h.handleEvents(m)
	case wire.KindEventBatchAck:
		h.handleCredit(m)
	case wire.KindServiceCall:
		h.handleServiceCall(m)
	}
}

func (h *Host) handleRegister(m wire.Message) {
	var body registerBody
	ack := registerAckBody{
		Server:   h.rng.ServerID(),
		Mediator: h.rng.ServerID(),
		Lease:    h.rng.Registrar().Lease(),
	}
	if err := m.DecodeBody(&body); err != nil {
		ack.Error = err.Error()
	} else if err := h.register(m.Src, body); err != nil {
		ack.Error = err.Error()
	}
	reply, err := m.Reply(wire.KindRegisterAck, ack)
	if err != nil {
		return
	}
	_ = h.send(m.Src, reply)
}

func (h *Host) register(src guid.GUID, body registerBody) error {
	prof := body.Profile
	prof.Entity = src
	if err := prof.Validate(); err != nil {
		return err
	}
	proxy := &remoteProxy{host: h, remote: src, app: body.Application}
	proxy.Base = entity.NewBaseWithID(src, prof, h.clk)

	h.mu.Lock()
	h.remotes[src] = proxy
	h.mu.Unlock()

	var err error
	if body.Application {
		// Remote CAAs are registered as applications whose ConsumeAll sends
		// whole delivery runs over the wire: the root subscription feeds the
		// proxy a slice per wakeup and the outbound coalescer ingests it
		// under a single lock.
		caa := entity.NewRemoteBatchCAA(src, prof.Name, func(events []event.Event) {
			h.sendEvents(src, events)
		}, h.clk)
		err = h.rng.AddApplication(caa)
	} else {
		err = h.rng.AddEntity(proxy)
	}
	if err != nil {
		return err
	}
	// Remote components renew their own leases via wire heartbeats; the
	// Range's local auto-renewal must not mask their failure.
	h.rng.StopRenewing(src)
	return nil
}

func (h *Host) handleQuery(m wire.Message) {
	var body queryBody
	result := queryResultBody{}
	if err := m.DecodeBody(&body); err != nil {
		result.Error = err.Error()
	} else {
		q, err := query.Decode(body.XML)
		if err != nil {
			result.Error = err.Error()
		} else {
			res, err := h.rng.Submit(q)
			if err != nil {
				result.Error = err.Error()
			} else {
				result.Profiles = res.Profiles
				result.Advertisement = res.Advertisement
				result.Provider = res.Provider
				result.Configuration = res.Configuration
				result.Deferred = res.Deferred
			}
		}
	}
	kind := wire.KindQueryResult
	if result.Error != "" {
		kind = wire.KindQueryError
	}
	reply, err := m.Reply(kind, result)
	if err != nil {
		return
	}
	_ = h.send(m.Src, reply)
}

// handleEvents ingests events published by a remote CE, accepting both the
// coalesced event.batch form and the legacy single-event frame (the two may
// interleave on one connection). The batch body is decoded once: its frames
// feed dispatch and its optional piggybacked credit feeds the endpoint's
// outbound coalescer.
func (h *Host) handleEvents(m wire.Message) {
	var frames []json.RawMessage
	var credit *wire.BatchCredit
	switch m.Kind {
	case wire.KindEvent:
		if len(m.Body) == 0 {
			return
		}
		frames = []json.RawMessage{m.Body}
	case wire.KindEventBatch:
		var body wire.EventBatchBody
		if err := m.DecodeBody(&body); err != nil || len(body.Events) == 0 {
			return
		}
		frames = body.Events
		credit = body.Credit
	default:
		return
	}
	events := make([]event.Event, 0, len(frames))
	for _, f := range frames {
		var e event.Event
		if err := json.Unmarshal(f, &e); err != nil {
			continue
		}
		if e.Source != m.Src {
			continue // a remote may only publish as itself
		}
		// Validate per frame: PublishAll rejects a batch whole, and one bad
		// event must not discard its 63 valid neighbours.
		if err := e.Validate(); err != nil {
			continue
		}
		// Strip any client-supplied Range stamp: Publish/PublishAll preserve
		// non-nil stamps for SCINET cross-range forwarding, so an untrusted
		// wire client could otherwise forge a sibling Range's stamp and dodge
		// Range-filtered subscriptions or the fabric's forwarding tap.
		e.Range = guid.Nil
		events = append(events, e)
	}
	switch len(events) {
	case 0:
	case 1:
		_ = h.rng.Publish(events[0])
	default:
		_ = h.rng.PublishAll(events)
	}
	// Batched publishers get a flow-credit ack so remote CEs can see the
	// drops their traffic causes. Legacy single-event frames predate acks
	// and stay silent (old peers would not understand the reply either).
	if m.Kind == wire.KindEventBatch {
		ackCredit := wire.BatchCredit{
			Events:    len(frames),
			Dropped:   h.rng.DispatchStats().Dropped,
			QueueFree: -1, // dispatch rings are per subscription, not one queue
		}
		if ack, err := wire.NewEventBatchAck(h.rng.ServerID(), m.Src, ackCredit); err == nil {
			_ = h.send(m.Src, ack)
		}
	}
	// A publisher that also receives deliveries may piggyback its credit.
	if credit != nil {
		h.applyCredit(m.Src, *credit)
	}
}

// handleCredit ingests a standalone event.batch_ack from a remote receiver.
func (h *Host) handleCredit(m wire.Message) {
	credit, ok := m.BatchCreditInfo()
	if !ok {
		return
	}
	h.applyCredit(m.Src, credit)
}

// applyCredit routes a receiver flow-credit report into the reporting
// endpoint's outbound coalescer, which throttles its flush rate while the
// credit stays collapsed. Reports from endpoints we never coalesce to are
// dropped — a credit must not create a queue.
func (h *Host) applyCredit(from guid.GUID, credit wire.BatchCredit) {
	h.mu.Lock()
	q := h.out[from]
	h.mu.Unlock()
	if q != nil {
		q.UpdateCredit(credit.Dropped, credit.QueueFree)
	}
}

func (h *Host) handleServiceCall(m wire.Message) {
	var body serviceCallBody
	reply := serviceReplyBody{}
	if err := m.DecodeBody(&body); err != nil {
		reply.Error = err.Error()
	} else {
		var out map[string]any
		var err error
		if body.Provider == h.rng.ServerID() {
			// Calls addressed to the Context Server itself are
			// infrastructure operations, not entity advertisements.
			out, err = h.serveInfra(body.Op)
		} else {
			out, err = h.rng.CallService(body.Provider, body.Op, body.Args)
		}
		if err != nil {
			reply.Error = err.Error()
		} else {
			reply.Result = out
		}
	}
	r, err := m.Reply(wire.KindServiceReply, reply)
	if err != nil {
		return
	}
	_ = h.send(m.Src, r)
}

// serveInfra answers service calls addressed to the Context Server: today
// "dispatch.stats", the Event Mediator's dispatch health (publish/deliver/
// drop totals, live subscriptions, and how much of the dispatch work the
// subscription index resolved without wildcard scanning). Values are
// float64 so they survive the JSON wire round trip unchanged.
func (h *Host) serveInfra(op string) (map[string]any, error) {
	switch op {
	case "dispatch.stats":
		stats := h.rng.StatsMap()
		out := make(map[string]any, len(stats))
		for k, v := range stats {
			out[k] = v
		}
		return out, nil
	default:
		return nil, fmt.Errorf("rangesvc: unknown infrastructure op %q", op)
	}
}

// sendEvent ships an event to a remote component, through the endpoint's
// coalescer when batching is enabled.
func (h *Host) sendEvent(to guid.GUID, e event.Event) {
	if h.maxBatch <= 1 {
		m, err := wire.NewMessage(h.rng.ServerID(), to, wire.KindEvent, e)
		if err != nil {
			return
		}
		if h.send(to, m) == nil {
			h.rng.RemoteBatchesSent.Inc()
			h.rng.RemoteEventsSent.Inc()
		}
		return
	}
	if q := h.queueFor(to); q != nil {
		q.Add(e)
	}
}

// sendEvents ships a run of events to one remote component. With batching
// enabled the whole run enters the endpoint's coalescer under one lock
// acquisition; otherwise each event ships as its own legacy frame.
func (h *Host) sendEvents(to guid.GUID, events []event.Event) {
	if len(events) == 0 {
		return
	}
	if h.maxBatch <= 1 {
		for i := range events {
			h.sendEvent(to, events[i])
		}
		return
	}
	if q := h.queueFor(to); q != nil {
		q.AddAll(events)
	}
}

// queueFor returns the destination's coalescer, creating it on first use
// (nil once the host has closed). Every endpoint's coalescer shares the
// Range's flow stats sink, so backpressure across all endpoints reads out
// of one set of remote.backpressure.* gauges.
func (h *Host) queueFor(to guid.GUID) *flow.Coalescer {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	q, ok := h.out[to]
	if !ok {
		q = flow.New(flow.Config{
			Clock:    h.clk,
			MaxBatch: h.maxBatch,
			MaxDelay: h.maxDelay,
			Adaptive: h.adaptive,
			Stats:    h.rng.FlowStats(),
			Send:     func(batch []event.Event) { h.sendBatch(to, batch) },
		})
		h.out[to] = q
	}
	return q
}

// sendBatch encodes a coalesced run of events into one event.batch wire
// message.
func (h *Host) sendBatch(to guid.GUID, events []event.Event) {
	frames := make([]json.RawMessage, 0, len(events))
	for i := range events {
		raw, err := json.Marshal(events[i])
		if err != nil {
			continue
		}
		frames = append(frames, raw)
	}
	if len(frames) == 0 {
		return
	}
	m, err := wire.NewEventBatch(h.rng.ServerID(), to, frames)
	if err != nil {
		return
	}
	if h.send(to, m) == nil {
		h.rng.RemoteBatchesSent.Inc()
		h.rng.RemoteEventsSent.Add(uint64(len(frames)))
	}
}

// send ships one wire message, counting failures in the Range's
// RemoteSendFailures metric and logging once per endpoint health
// transition (working → failing and back) rather than per message.
func (h *Host) send(to guid.GUID, m wire.Message) error {
	err := h.ep.Send(m)
	h.mu.Lock()
	was := h.failing.Has(to)
	if err != nil {
		h.failing.Add(to)
	} else {
		h.failing.Remove(to)
	}
	h.mu.Unlock()
	if err != nil {
		h.rng.RemoteSendFailures.Inc()
		if !was {
			log.Printf("rangesvc: sends to %s failing: %v", to.Short(), err)
		}
	} else if was {
		log.Printf("rangesvc: sends to %s recovered", to.Short())
	}
	return err
}

// Connector is the client side of the Fig 5 sequence for a remote CE or
// CAA. Construct with NewConnector, then Register.
//
// Pushed events (query results, configuration inputs) land in a bounded
// delivery queue drained by a dedicated goroutine, so a slow onEvent
// handler can never stall the transport; when the queue overflows, the
// oldest events are dropped (context data is freshest-wins) and counted.
// Every received event.batch is acknowledged with the connector's flow
// credit — the cumulative drop count and remaining queue capacity — which
// the Range Service feeds into that endpoint's outbound coalescer to
// throttle its flush rate while the connector is overloaded.
type Connector struct {
	id   guid.GUID
	name string
	ep   transport.Endpoint
	clk  clock.Clock

	mu        sync.Mutex
	server    guid.GUID
	lease     time.Duration
	announced chan announceBody
	waiters   map[guid.GUID]chan wire.Message
	onEvent   func(event.Event)
	dq        []event.Event // bounded delivery queue (onEvent != nil)
	dqCap     int
	dqWake    chan struct{}
	dqDropped uint64 // cumulative overflow drops, reported in acks
	credit    wire.BatchCredit
	hasCredit bool
	hbTimer   clock.Timer
	closed    bool
}

// DefaultDeliveryQueueLen is the connector delivery queue capacity when
// none is set.
const DefaultDeliveryQueueLen = 1024

// Errors.
var (
	ErrNotRegistered = errors.New("rangesvc: not registered with a range")
	ErrTimeout       = errors.New("rangesvc: request timed out")
)

// RequestTimeout bounds every synchronous round trip.
const RequestTimeout = 5 * time.Second

// NewConnector attaches a component endpoint to the network. onEvent
// receives pushed events (query results for CAAs, configuration inputs for
// CEs); it may be nil.
func NewConnector(id guid.GUID, name string, net transport.Network, onEvent func(event.Event), clk clock.Clock) (*Connector, error) {
	if clk == nil {
		clk = clock.Real()
	}
	c := &Connector{
		id:        id,
		name:      name,
		clk:       clk,
		announced: make(chan announceBody, 1),
		waiters:   make(map[guid.GUID]chan wire.Message),
		onEvent:   onEvent,
		dqCap:     DefaultDeliveryQueueLen,
		dqWake:    make(chan struct{}, 1),
	}
	ep, err := net.Attach(id, c.handle)
	if err != nil {
		return nil, fmt.Errorf("rangesvc: attach connector: %w", err)
	}
	c.ep = ep
	if onEvent != nil {
		go c.deliverLoop()
	}
	return c, nil
}

// SetDeliveryQueueCap bounds the delivery queue (events awaiting onEvent).
// Shrinking below the current backlog drops the oldest surplus.
func (c *Connector) SetDeliveryQueueCap(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	c.dqCap = n
	if over := len(c.dq) - n; over > 0 {
		c.dq = append(c.dq[:0], c.dq[over:]...)
		c.dqDropped += uint64(over)
	}
	c.mu.Unlock()
}

// DeliveryDrops reports how many pushed events overflowed the delivery
// queue — the figure acked back to the Range Service as flow credit.
func (c *Connector) DeliveryDrops() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dqDropped
}

// RemoteCredit returns the last flow-credit report received from the
// Range Service (acks to this connector's published batches): the Range's
// cumulative dispatch drops. ok is false until a report arrives — old
// hosts never send one.
func (c *Connector) RemoteCredit() (wire.BatchCredit, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.credit, c.hasCredit
}

// enqueueDeliveries admits pushed events to the bounded delivery queue,
// dropping the oldest (freshest-wins, like the mediator's rings) on
// overflow, and reports the queue state for the ack.
func (c *Connector) enqueueDeliveries(events []event.Event) (dropped uint64, free int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.dqDropped, 0
	}
	if over := len(events) - c.dqCap; over > 0 {
		// The burst alone exceeds the queue: only its freshest tail can
		// survive, everything older is dropped unseen.
		c.dqDropped += uint64(over + len(c.dq))
		c.dq = c.dq[:0]
		events = events[over:]
	} else if over := len(c.dq) + len(events) - c.dqCap; over > 0 {
		c.dq = append(c.dq[:0], c.dq[over:]...)
		c.dqDropped += uint64(over)
	}
	c.dq = append(c.dq, events...)
	select {
	case c.dqWake <- struct{}{}:
	default:
	}
	return c.dqDropped, c.dqCap - len(c.dq)
}

// deliverLoop drains the delivery queue into onEvent, whole backlog per
// wakeup.
func (c *Connector) deliverLoop() {
	var buf []event.Event
	for range c.dqWake {
		for {
			c.mu.Lock()
			if len(c.dq) == 0 {
				c.mu.Unlock()
				break
			}
			buf = append(buf[:0], c.dq...)
			c.dq = c.dq[:0]
			c.mu.Unlock()
			for i := range buf {
				c.onEvent(buf[i])
			}
		}
	}
}

// ID returns the component's GUID.
func (c *Connector) ID() guid.GUID { return c.id }

// ServerID returns the Context Server handle received at registration.
func (c *Connector) ServerID() guid.GUID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.server
}

// AwaitAnnounce blocks until a Range Service announcement arrives (the
// entity "starting up" side of Fig 5).
func (c *Connector) AwaitAnnounce(timeout time.Duration) (rangeID, serverID guid.GUID, err error) {
	select {
	case a := <-c.announced:
		return a.Range, a.Server, nil
	case <-time.After(timeout):
		return guid.Nil, guid.Nil, ErrTimeout
	}
}

// Register completes the Fig 5 sequence against the given Context Server:
// it sends the profile, receives the CS/Mediator handles and the lease, and
// starts heartbeating.
func (c *Connector) Register(serverID guid.GUID, prof profile.Profile, application bool) error {
	prof.Entity = c.id
	prof.Name = c.name
	m, err := wire.NewMessage(c.id, serverID, wire.KindRegister, registerBody{
		Profile:     prof,
		Application: application,
	})
	if err != nil {
		return err
	}
	reply, err := c.roundTrip(m)
	if err != nil {
		return err
	}
	var ack registerAckBody
	if err := reply.DecodeBody(&ack); err != nil {
		return err
	}
	if ack.Error != "" {
		return fmt.Errorf("rangesvc: registration rejected: %s", ack.Error)
	}
	c.mu.Lock()
	c.server = ack.Server
	c.lease = ack.Lease
	c.mu.Unlock()
	c.scheduleHeartbeat()
	return nil
}

// Deregister announces clean departure.
func (c *Connector) Deregister() error {
	srv := c.ServerID()
	if srv.IsNil() {
		return ErrNotRegistered
	}
	m, err := wire.NewMessage(c.id, srv, wire.KindDeregister, map[string]string{"bye": "true"})
	if err != nil {
		return err
	}
	_, err = c.roundTrip(m)
	c.mu.Lock()
	c.server = guid.Nil
	if c.hbTimer != nil {
		c.hbTimer.Stop()
	}
	c.mu.Unlock()
	return err
}

// Submit sends a query (Fig 6 XML on the wire) and returns the result.
func (c *Connector) Submit(q query.Query) (*queryResultBody, error) {
	srv := c.ServerID()
	if srv.IsNil() {
		return nil, ErrNotRegistered
	}
	xmlData, err := q.Encode()
	if err != nil {
		return nil, err
	}
	m, err := wire.NewMessage(c.id, srv, wire.KindQuery, queryBody{XML: xmlData})
	if err != nil {
		return nil, err
	}
	reply, err := c.roundTrip(m)
	if err != nil {
		return nil, err
	}
	var res queryResultBody
	if err := reply.DecodeBody(&res); err != nil {
		return nil, err
	}
	if res.Error != "" {
		return nil, fmt.Errorf("rangesvc: query failed: %s", res.Error)
	}
	return &res, nil
}

// Call invokes an advertisement operation on a provider in the Range.
func (c *Connector) Call(provider guid.GUID, op string, args map[string]any) (map[string]any, error) {
	srv := c.ServerID()
	if srv.IsNil() {
		return nil, ErrNotRegistered
	}
	m, err := wire.NewMessage(c.id, srv, wire.KindServiceCall, serviceCallBody{
		Provider: provider,
		Op:       op,
		Args:     args,
	})
	if err != nil {
		return nil, err
	}
	reply, err := c.roundTrip(m)
	if err != nil {
		return nil, err
	}
	var res serviceReplyBody
	if err := reply.DecodeBody(&res); err != nil {
		return nil, err
	}
	if res.Error != "" {
		return nil, fmt.Errorf("rangesvc: service call failed: %s", res.Error)
	}
	return res.Result, nil
}

// Publish sends an event to the Range's mediator (remote CE emission).
func (c *Connector) Publish(e event.Event) error {
	srv := c.ServerID()
	if srv.IsNil() {
		return ErrNotRegistered
	}
	m, err := wire.NewMessage(c.id, srv, wire.KindEvent, e)
	if err != nil {
		return err
	}
	return c.ep.Send(m)
}

// PublishAll sends a batch of events to the Range's mediator as one
// event.batch wire message; the Range ingests it through the bus's batched
// dispatch path. An empty batch is a no-op.
func (c *Connector) PublishAll(events []event.Event) error {
	if len(events) == 0 {
		return nil
	}
	srv := c.ServerID()
	if srv.IsNil() {
		return ErrNotRegistered
	}
	frames := make([]json.RawMessage, 0, len(events))
	for i := range events {
		raw, err := json.Marshal(events[i])
		if err != nil {
			return err
		}
		frames = append(frames, raw)
	}
	m, err := wire.NewEventBatch(c.id, srv, frames)
	if err != nil {
		return err
	}
	return c.ep.Send(m)
}

// Close detaches the connector.
func (c *Connector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	if c.hbTimer != nil {
		c.hbTimer.Stop()
	}
	c.dq = nil
	close(c.dqWake)
	c.mu.Unlock()
	return c.ep.Close()
}

func (c *Connector) scheduleHeartbeat() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.lease <= 0 {
		return
	}
	every := c.lease / 3
	c.hbTimer = c.clk.AfterFunc(every, func() {
		srv := c.ServerID()
		if !srv.IsNil() {
			if m, err := wire.NewMessage(c.id, srv, wire.KindHeartbeat, map[string]string{"hb": "1"}); err == nil {
				_ = c.ep.Send(m)
			}
		}
		c.scheduleHeartbeat()
	})
}

func (c *Connector) roundTrip(m wire.Message) (wire.Message, error) {
	corr := guid.New(guid.KindQuery)
	m.Corr = corr
	ch := make(chan wire.Message, 1)
	c.mu.Lock()
	c.waiters[corr] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, corr)
		c.mu.Unlock()
	}()
	if err := c.ep.Send(m); err != nil {
		return wire.Message{}, err
	}
	select {
	case reply := <-ch:
		return reply, nil
	case <-time.After(RequestTimeout):
		return wire.Message{}, ErrTimeout
	}
}

func (c *Connector) handle(m wire.Message) {
	switch m.Kind {
	case wire.KindAnnounce:
		var a announceBody
		if err := m.DecodeBody(&a); err == nil {
			select {
			case c.announced <- a:
			default:
			}
		}
	case wire.KindEvent, wire.KindEventBatch:
		if c.onEvent == nil {
			return
		}
		frames, err := m.EventFrames()
		if err != nil {
			return
		}
		events := make([]event.Event, 0, len(frames))
		for _, f := range frames {
			var e event.Event
			if err := json.Unmarshal(f, &e); err == nil {
				events = append(events, e)
			}
		}
		dropped, free := c.enqueueDeliveries(events)
		// Acknowledge batches with flow credit so the host's coalescer can
		// match its flush rate to what this connector absorbs. Legacy
		// single-event frames stay silent: their senders predate acks.
		if m.Kind == wire.KindEventBatch {
			credit := wire.BatchCredit{Events: len(frames), Dropped: dropped, QueueFree: free}
			if ack, err := wire.NewEventBatchAck(c.id, m.Src, credit); err == nil {
				_ = c.ep.Send(ack)
			}
		}
	case wire.KindEventBatchAck:
		if credit, ok := m.BatchCreditInfo(); ok {
			c.mu.Lock()
			c.credit = credit
			c.hasCredit = true
			c.mu.Unlock()
		}
	default:
		if !m.Corr.IsNil() {
			c.mu.Lock()
			ch, ok := c.waiters[m.Corr]
			c.mu.Unlock()
			if ok {
				select {
				case ch <- m:
				default:
				}
			}
		}
	}
}
