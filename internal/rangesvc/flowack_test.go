package rangesvc

// Tests for PR 5's flow-control correctness fixes: per-endpoint attributed
// ack credit, ack coalescing under legacy-frame floods, piggybacked credit
// on bidirectional links, deterministic Connector.Close drain-or-discard,
// and the rate-adaptive delivery queue.

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/leak"
	"sci/internal/mediator"
	"sci/internal/profile"
	"sci/internal/transport"
	"sci/internal/wire"
)

// rawPeer attaches a bare endpoint that records everything sent to it and
// can send raw wire messages — a stand-in for remote publishers of any
// protocol vintage.
type rawPeer struct {
	id guid.GUID
	ep transport.Endpoint
	mu sync.Mutex
	in []wire.Message
}

func newRawPeer(t testing.TB, net *transport.Memory) *rawPeer {
	t.Helper()
	p := &rawPeer{id: guid.New(guid.KindDevice)}
	ep, err := net.Attach(p.id, func(m wire.Message) {
		p.mu.Lock()
		p.in = append(p.in, m)
		p.mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	p.ep = ep
	return p
}

func (p *rawPeer) received(kind wire.Kind) []wire.Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []wire.Message
	for _, m := range p.in {
		if m.Kind == kind {
			out = append(out, m)
		}
	}
	return out
}

func (p *rawPeer) sendBatch(t testing.TB, to guid.GUID, n int, base uint64) {
	t.Helper()
	events := make([]event.Event, n)
	for i := range events {
		events[i] = mkReading(p.id, base+uint64(i))
	}
	frames := make([]json.RawMessage, 0, n)
	for i := range events {
		raw, err := json.Marshal(events[i])
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, raw)
	}
	m, err := wire.NewEventBatch(p.id, to, frames)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ep.Send(m); err != nil {
		t.Fatal(err)
	}
}

func (p *rawPeer) sendLegacy(t testing.TB, to guid.GUID, seq uint64) {
	t.Helper()
	m, err := wire.NewMessage(p.id, to, wire.KindEvent, mkReading(p.id, seq))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ep.Send(m); err != nil {
		t.Fatal(err)
	}
}

// TestAckCoalescingUnderLegacyFlood: one event.batch marks the endpoint
// ack-aware; a 1000-frame legacy burst then accrues into ONE deferred
// report (the window timer), not one reverse frame per ingested message.
func TestAckCoalescingUnderLegacyFlood(t *testing.T) {
	r := batchRig(t, 4, 2*time.Millisecond)
	defer r.close()
	pub := newRawPeer(t, r.net)
	srv := r.rng.ServerID()

	pub.sendBatch(t, srv, 2, 1)
	waitFor(t, func() bool { return len(pub.received(wire.KindEventBatchAck)) == 1 })

	const flood = 1000
	base := r.rng.DispatchStats().Published
	for i := 0; i < flood; i++ {
		pub.sendLegacy(t, srv, uint64(100+i))
	}
	waitFor(t, func() bool { return r.rng.DispatchStats().Published >= base+flood })
	// The flood is healthy traffic (no drops): every report after the
	// leading one is redundant and must coalesce behind the window timer.
	if got := len(pub.received(wire.KindEventBatchAck)); got != 1 {
		t.Fatalf("legacy flood provoked %d standalone acks, want the initial 1", got)
	}
	r.clk.Advance(2 * time.Millisecond)
	waitFor(t, func() bool { return len(pub.received(wire.KindEventBatchAck)) == 2 })
	acks := pub.received(wire.KindEventBatchAck)
	credit, ok := acks[1].BatchCreditInfo()
	if !ok {
		t.Fatal("deferred ack carries no credit")
	}
	if credit.Events != flood {
		t.Fatalf("deferred ack covers %d frames, want %d", credit.Events, flood)
	}
	if got := r.host.AcksSent.Value(); got != 2 {
		t.Fatalf("AcksSent = %d, want 2 for 1001 ingested messages", got)
	}
}

// TestLegacyOnlyPeerNeverAcked: a peer that has only ever sent legacy
// single-event frames predates acks and must stay unanswered.
func TestLegacyOnlyPeerNeverAcked(t *testing.T) {
	r := batchRig(t, 4, 2*time.Millisecond)
	defer r.close()
	pub := newRawPeer(t, r.net)
	for i := 0; i < 50; i++ {
		pub.sendLegacy(t, r.rng.ServerID(), uint64(i))
	}
	r.clk.Advance(10 * time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	if got := len(pub.received(wire.KindEventBatchAck)); got != 0 {
		t.Fatalf("legacy-only peer received %d acks, want 0", got)
	}
}

// TestAckCreditAttributedToEndpoint: two remote publishers share a Range
// whose lone subscriber is overflowing under one publisher's flood. The
// flooder's ack must carry the drops, the innocent endpoint's must not —
// per-publisher attribution, not the Range-wide total.
func TestAckCreditAttributedToEndpoint(t *testing.T) {
	r := batchRig(t, 4, 2*time.Millisecond)
	defer r.close()
	srv := r.rng.ServerID()
	flooder := newRawPeer(t, r.net)
	innocent := newRawPeer(t, r.net)

	// A parked subscriber with a tiny ring: the flood must overflow it.
	entered := make(chan struct{})
	gate := make(chan struct{})
	defer close(gate)
	var delivered atomic.Int64
	if _, err := r.rng.Mediator().Subscribe(guid.New(guid.KindSoftware),
		event.Filter{}, func(event.Event) {
			if delivered.Add(1) == 1 {
				entered <- struct{}{}
				<-gate
			}
		}, mediator.SubOptions{QueueLen: 2}); err != nil {
		t.Fatal(err)
	}
	flooder.sendBatch(t, srv, 1, 1)
	<-entered // ring empty, delivery goroutine parked

	flooder.sendBatch(t, srv, 100, 10) // 100 into 2 slots: ~98 drops, all the flooder's
	// The drop-bearing report is rate-limited to one per ack window (the
	// figure is cumulative): wait for the ingest, then run the window out.
	waitFor(t, func() bool { return r.rng.DispatchStats().Dropped >= 98 })
	r.clk.Advance(2 * time.Millisecond)
	waitFor(t, func() bool { return len(flooder.received(wire.KindEventBatchAck)) >= 2 })
	innocent.sendBatch(t, srv, 2, 1)
	waitFor(t, func() bool { return len(innocent.received(wire.KindEventBatchAck)) >= 1 })

	facks := flooder.received(wire.KindEventBatchAck)
	fcredit, _ := facks[len(facks)-1].BatchCreditInfo()
	if fcredit.Dropped == 0 {
		t.Fatal("flooder's ack reports no drops despite overflowing the ring")
	}
	iacks := innocent.received(wire.KindEventBatchAck)
	icredit, _ := iacks[len(iacks)-1].BatchCreditInfo()
	if icredit.Dropped != 0 {
		t.Fatalf("innocent endpoint blamed for %d drops caused by the flooder", icredit.Dropped)
	}
	// The attribution table agrees: every drop is the flooder's (including
	// its own queued events the innocent batch later evicted), none the
	// innocent's.
	if got := r.rng.DispatchDropsFor(flooder.id); got < fcredit.Dropped {
		t.Fatalf("DispatchDropsFor(flooder) = %d, below the acked %d", got, fcredit.Dropped)
	}
	if got := r.rng.DispatchDropsFor(innocent.id); got != 0 {
		t.Fatalf("DispatchDropsFor(innocent) = %d, want 0", got)
	}
}

// TestPiggybackedCreditSuppressesStandaloneAcks: on a hot bidirectional
// link, credit reports in both directions ride the opposing event.batch
// traffic; the standalone ack frames stay at the unavoidable leading edge.
func TestPiggybackedCreditSuppressesStandaloneAcks(t *testing.T) {
	r := batchRig(t, 4, 50*time.Millisecond)
	defer r.close()
	srv := r.rng.ServerID()

	var received atomic.Int64
	c, err := NewBatchConnector(guid.New(guid.KindApplication), "duplex", r.net,
		func(events []event.Event) { received.Add(int64(len(events))) }, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Register(srv, profile.Profile{}, true); err != nil {
		t.Fatal(err)
	}

	src := guid.New(guid.KindDevice)
	burst := func(from guid.GUID, base, n int) []event.Event {
		out := make([]event.Event, n)
		for i := range out {
			out[i] = mkReading(from, uint64(base+i))
		}
		return out
	}
	// Prime both directions: the leading-edge reports are standalone. The
	// connector publishes as itself (a wire client may only publish under
	// its own GUID).
	r.host.sendEvents(c.ID(), burst(src, 0, 4)) // full batch: size flush, no timer needed
	waitFor(t, func() bool { return c.AcksSent() == 1 && received.Load() == 4 })
	pubBase := r.rng.DispatchStats().Published
	if err := c.PublishAll(burst(c.ID(), 100, 4)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return r.host.AcksSent.Value() == 1 })

	// Hot phase: 20 full batches each way, interleaved. Every report now
	// has reverse traffic to ride: the host's pending ack leaves on its
	// next delivery batch, the connector's on its next publish.
	for i := 0; i < 20; i++ {
		if err := c.PublishAll(burst(c.ID(), 1000+i*4, 4)); err != nil {
			t.Fatal(err)
		}
		want := pubBase + uint64(4*(i+2))
		waitFor(t, func() bool { return r.rng.DispatchStats().Published >= want })
		r.host.sendEvents(c.ID(), burst(src, 2000+i*4, 4))
		wantRecv := int64(4 * (i + 2))
		waitFor(t, func() bool { return received.Load() >= wantRecv })
	}

	hostStandalone := r.host.AcksSent.Value()
	connStandalone := c.AcksSent()
	if r.host.AcksPiggybacked.Value() == 0 || c.AcksPiggybacked() == 0 {
		t.Fatalf("no piggybacked credit on a hot bidirectional link (host %d, conn %d)",
			r.host.AcksPiggybacked.Value(), c.AcksPiggybacked())
	}
	// PR 4 shipped one standalone ack per received batch: 21 each way. The
	// acceptance bar is ≤55%; the leading edge alone should leave ~5%.
	if hostStandalone > 11 || connStandalone > 11 {
		t.Fatalf("standalone acks host=%d conn=%d of 21 batches each way, want ≤11 (55%%)",
			hostStandalone, connStandalone)
	}
	// The piggybacked reports really arrived: both sides hold credit.
	if _, ok := c.RemoteCredit(); !ok {
		t.Fatal("connector never saw the host's credit")
	}
}

// TestConnectorCloseCountsQueuedDrops: closing a connector whose delivery
// queue still holds events discards them deterministically, counts them in
// DeliveryDrops, and the figure is stable afterwards.
func TestConnectorCloseCountsQueuedDrops(t *testing.T) {
	r := batchRig(t, 4, 50*time.Millisecond)
	defer r.close()
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	var first atomic.Bool
	c, err := NewConnector(guid.New(guid.KindApplication), "doomed", r.net, func(event.Event) {
		if first.CompareAndSwap(false, true) {
			entered <- struct{}{}
			<-gate
		}
	}, r.clk)
	if err != nil {
		t.Fatal(err)
	}

	// One event parks the drain goroutine; five more wait in the queue.
	c.enqueueDeliveries([]event.Event{mkReading(guid.New(guid.KindDevice), 0)})
	<-entered
	events := make([]event.Event, 5)
	for i := range events {
		events[i] = mkReading(guid.New(guid.KindDevice), uint64(i+1))
	}
	c.enqueueDeliveries(events)

	// Close joins the drain goroutine, and the handler is still parked on
	// gate — run Close concurrently, observe the queued events get
	// dropped, then release the handler so Close can finish the join.
	closed := make(chan error, 1)
	go func() { closed <- c.Close() }()
	deadline := time.Now().Add(5 * time.Second)
	for c.DeliveryDrops() != 5 {
		if time.Now().After(deadline) {
			t.Fatalf("DeliveryDrops = %d, want the 5 queued events", c.DeliveryDrops())
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-closed:
		t.Fatal("Close returned while a handler invocation was still in flight")
	default:
	}
	close(gate)
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	// Stable: post-close enqueues neither deliver nor mutate the counter.
	c.enqueueDeliveries(events)
	if got := c.DeliveryDrops(); got != 5 {
		t.Fatalf("DeliveryDrops moved after close: %d", got)
	}
}

// TestConnectorCloseVsDrainRace hammers enqueue against Close under -race:
// the drain goroutine must exit (not park on a non-empty queue) and the
// drop accounting must stay consistent.
func TestConnectorCloseVsDrainRace(t *testing.T) {
	defer leak.Check(t)()
	for round := 0; round < 20; round++ {
		net := transport.NewMemory(transport.MemoryConfig{})
		var consumed atomic.Int64
		c, err := NewBatchConnector(guid.New(guid.KindApplication), "racer", net,
			func(events []event.Event) {
				consumed.Add(int64(len(events)))
				time.Sleep(time.Microsecond)
			}, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.SetDeliveryQueueCap(32)
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				src := guid.New(guid.KindDevice)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					c.enqueueDeliveries([]event.Event{mkReading(src, uint64(i))})
				}
			}(g)
		}
		time.Sleep(time.Millisecond)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		close(stop)
		wg.Wait()
		drops := c.DeliveryDrops()
		if drops != c.DeliveryDrops() {
			t.Fatal("DeliveryDrops unstable after close")
		}
		_ = net.Close()
	}
}

// TestAdaptiveDeliveryQueueFollowsRate: with EnableAdaptiveQueue the bound
// grows under a hot stream and shrinks back when the stream goes idle.
func TestAdaptiveDeliveryQueueFollowsRate(t *testing.T) {
	r := batchRig(t, 4, 50*time.Millisecond)
	defer r.close()
	c, err := NewBatchConnector(guid.New(guid.KindApplication), "sized", r.net,
		func([]event.Event) {}, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.EnableAdaptiveQueue(8, 2048, 100*time.Millisecond)
	if got := c.DeliveryQueueCap(); got != 8 {
		t.Fatalf("initial adaptive cap = %d, want the floor 8", got)
	}

	src := guid.New(guid.KindDevice)
	burst := make([]event.Event, 100)
	for i := range burst {
		burst[i] = mkReading(src, uint64(i))
	}
	// 100 events per 5ms = 20k events/s → 50ms of traffic = 1000 ≥ cap 2048? no: 1000.
	for i := 0; i < 60; i++ {
		r.clk.Advance(5 * time.Millisecond)
		c.enqueueDeliveries(burst)
	}
	hot := c.DeliveryQueueCap()
	if hot < 500 {
		t.Fatalf("hot adaptive cap = %d, want ≥ 500 (≈20k/s × 50ms)", hot)
	}
	// Idle: the estimate decays, the bound shrinks toward the floor.
	for i := 0; i < 60; i++ {
		r.clk.Advance(50 * time.Millisecond)
		c.enqueueDeliveries(burst[:1])
	}
	if got := c.DeliveryQueueCap(); got >= hot/4 {
		t.Fatalf("idle adaptive cap = %d, want well below the hot %d", got, hot)
	}
}

// TestBatchConnectorReceivesWholeSlices: a batch connector's handler sees
// the backlog as slices, not single events.
func TestBatchConnectorReceivesWholeSlices(t *testing.T) {
	r := batchRig(t, 8, 50*time.Millisecond)
	defer r.close()
	var mu sync.Mutex
	var calls int
	var total int
	c, err := NewBatchConnector(guid.New(guid.KindApplication), "batcher", r.net,
		func(events []event.Event) {
			mu.Lock()
			calls++
			total += len(events)
			mu.Unlock()
		}, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	src := guid.New(guid.KindDevice)
	burst := make([]event.Event, 8)
	for i := range burst {
		burst[i] = mkReading(src, uint64(i))
	}
	r.host.sendEvents(c.ID(), burst)
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return total == 8
	})
	mu.Lock()
	defer mu.Unlock()
	if calls >= total {
		t.Fatalf("%d handler calls for %d events: backlog not delivered as slices", calls, total)
	}
}
