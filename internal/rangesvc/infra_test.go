package rangesvc

// Tests for infrastructure service calls addressed to the Context Server
// itself (dispatch.stats).

import (
	"testing"

	"sci/internal/guid"
	"sci/internal/profile"
)

func TestDispatchStatsServiceCall(t *testing.T) {
	r := newRig(t)
	defer r.close()
	app, err := NewConnector(guid.New(guid.KindApplication), "ops", r.net, nil, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := app.Register(r.rng.ServerID(), profile.Profile{}, true); err != nil {
		t.Fatal(err)
	}

	// Drive a little event traffic so the counters are non-zero: the Range
	// publishes lifecycle events itself on every registration.
	out, err := app.Call(r.rng.ServerID(), "dispatch.stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"published", "delivered", "dropped", "subs",
		"index_hits", "residual_scanned", "index_hit_ratio", "shards",
	} {
		if _, ok := out[key].(float64); !ok {
			t.Fatalf("dispatch.stats missing numeric %q: %v", key, out)
		}
	}
	if out["shards"].(float64) < 1 {
		t.Fatalf("shards = %v, want ≥ 1", out["shards"])
	}
	if out["published"].(float64) < 1 {
		t.Fatalf("published = %v, want ≥ 1 (lifecycle events)", out["published"])
	}
	if r := out["index_hit_ratio"].(float64); r < 0 || r > 1 {
		t.Fatalf("index_hit_ratio = %v, want within [0,1]", r)
	}

	// Unknown infrastructure ops must fail loudly, not fall through to
	// entity lookup.
	if _, err := app.Call(r.rng.ServerID(), "no.such.op", nil); err == nil {
		t.Fatal("unknown infrastructure op accepted")
	}
}
