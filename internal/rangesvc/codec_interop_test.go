package rangesvc

// Mixed-codec Host↔Connector interop for the zero-copy wire path (PR 7): a
// connector whose endpoint is pinned to the legacy JSON codec (the
// in-process stand-in for a pre-binary client) keeps exchanging coalesced
// event batches with a native-batch Host in both directions, piggybacked
// flow credit included.

import (
	"sync/atomic"
	"testing"
	"time"

	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/profile"
	"sci/internal/wire"
)

// TestMixedCodecHostConnectorWithCredit: the host ships native batches;
// the legacy connector's deliveries are materialized to per-event frames
// on the hop, and its own publishes materialize on the way in. Credit
// reports still piggyback on the opposing batch traffic in both
// directions.
func TestMixedCodecHostConnectorWithCredit(t *testing.T) {
	r := batchRig(t, 4, 50*time.Millisecond)
	defer r.close()
	srv := r.rng.ServerID()

	var received atomic.Int64
	connID := guid.New(guid.KindApplication)
	r.net.ConfigureCodec(connID, wire.CodecJSON)
	c, err := NewBatchConnector(connID, "legacy-duplex", r.net,
		func(events []event.Event) { received.Add(int64(len(events))) }, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Register(srv, profile.Profile{}, true); err != nil {
		t.Fatal(err)
	}

	src := guid.New(guid.KindDevice)
	burst := func(from guid.GUID, base, n int) []event.Event {
		out := make([]event.Event, n)
		for i := range out {
			out[i] = mkReading(from, uint64(base+i))
		}
		return out
	}

	// Host → legacy connector: a full batch flushes on fill, materializes
	// for the JSON endpoint, and the connector still acks it.
	r.host.sendEvents(c.ID(), burst(src, 0, 4))
	waitFor(t, func() bool { return received.Load() == 4 && c.AcksSent() == 1 })

	// Legacy connector → host: the publish materializes on the way in and
	// the Range ingests it through the batched dispatch path.
	pubBase := r.rng.DispatchStats().Published
	if err := c.PublishAll(burst(c.ID(), 100, 4)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return r.rng.DispatchStats().Published == pubBase+4 })
	waitFor(t, func() bool { return r.host.AcksSent.Value() == 1 })

	// Hot bidirectional phase: credit piggybacks on the materialized legacy
	// frames exactly as it does on native batches.
	for i := 0; i < 10; i++ {
		if err := c.PublishAll(burst(c.ID(), 1000+i*4, 4)); err != nil {
			t.Fatal(err)
		}
		want := pubBase + uint64(4*(i+2))
		waitFor(t, func() bool { return r.rng.DispatchStats().Published >= want })
		r.host.sendEvents(c.ID(), burst(src, 2000+i*4, 4))
		wantRecv := int64(4 * (i + 2))
		waitFor(t, func() bool { return received.Load() >= wantRecv })
	}
	if r.host.AcksPiggybacked.Value() == 0 || c.AcksPiggybacked() == 0 {
		t.Fatalf("no piggybacked credit across the legacy link (host %d, conn %d)",
			r.host.AcksPiggybacked.Value(), c.AcksPiggybacked())
	}
	if _, ok := c.RemoteCredit(); !ok {
		t.Fatal("legacy connector never saw the host's credit")
	}
}
