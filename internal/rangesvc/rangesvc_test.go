package rangesvc

import (
	"sync"
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/entity"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/mediator"
	"sci/internal/profile"
	"sci/internal/query"
	"sci/internal/sensor"
	"sci/internal/server"
	"sci/internal/transport"
)

var epoch = time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// rig: a Range hosted on an in-memory network, with one local objLocation
// CE so remote sighting sources can feed position queries.
type rig struct {
	rng  *server.Range
	host *Host
	net  *transport.Memory
	clk  *clock.Manual
}

func newRig(t testing.TB) *rig {
	t.Helper()
	clk := clock.NewManual(epoch)
	rng := server.New(server.Config{
		Name:           "level-10",
		Clock:          clk,
		AutoRenewEvery: 5 * time.Second,
	})
	net := transport.NewMemory(transport.MemoryConfig{Clock: clk})
	host, err := NewHost(rng, net, clk)
	if err != nil {
		t.Fatal(err)
	}
	obj := entity.NewObjLocationCE(nil, clk)
	if err := rng.AddEntity(obj); err != nil {
		t.Fatal(err)
	}
	return &rig{rng: rng, host: host, net: net, clk: clk}
}

func (r *rig) close() {
	_ = r.host.Close()
	r.rng.Close()
	_ = r.net.Close()
}

func TestAnnounceReachesConnector(t *testing.T) {
	r := newRig(t)
	defer r.close()
	id := guid.New(guid.KindApplication)
	c, err := NewConnector(id, "remote-app", r.net, nil, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := r.host.Announce(id); err != nil {
		t.Fatal(err)
	}
	rangeID, serverID, err := c.AwaitAnnounce(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rangeID != r.rng.ID() || serverID != r.rng.ServerID() {
		t.Fatal("announce handles wrong")
	}
}

func TestFig5SequenceRemoteCAAQuery(t *testing.T) {
	r := newRig(t)
	defer r.close()

	// Remote sighting source (a door sensor living in another process).
	srcID := guid.New(guid.KindDevice)
	src, err := NewConnector(srcID, "remote-door", r.net, nil, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.Register(r.rng.ServerID(), profile.Profile{
		Outputs: []ctxtype.Type{ctxtype.LocationSightingDoor},
		Quality: 0.9,
	}, false); err != nil {
		t.Fatal(err)
	}
	if !r.rng.Registrar().IsLive(srcID) {
		t.Fatal("remote CE not registered")
	}

	// Remote CAA.
	var mu sync.Mutex
	var got []event.Event
	appID := guid.New(guid.KindApplication)
	app, err := NewConnector(appID, "remote-app", r.net, func(e event.Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	}, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := app.Register(r.rng.ServerID(), profile.Profile{}, true); err != nil {
		t.Fatal(err)
	}

	// Submit a subscription query over the wire (XML form).
	q := query.New(appID, query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
	res, err := app.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Configuration.IsNil() {
		t.Fatalf("result = %+v", res)
	}

	// The remote source publishes a sighting; it flows source → (wire) →
	// mediator → objLocation CE → (wire) → remote CAA.
	bob := guid.New(guid.KindPerson)
	sighting := event.New(ctxtype.LocationSightingDoor, srcID, 1, epoch,
		map[string]any{"place": "l10.01"}).WithSubject(bob)
	if err := src.Publish(sighting); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 1
	})
	mu.Lock()
	e := got[0]
	mu.Unlock()
	if e.Type != ctxtype.LocationPosition || e.Subject != bob {
		t.Fatalf("delivered = %+v", e)
	}
}

func TestRemoteCEReceivesConfigurationInputs(t *testing.T) {
	r := newRig(t)
	defer r.close()

	// A remote transformer CE: consumes positions, produces path.route.
	// Its inputs must be forwarded over the wire by the host proxy.
	var mu sync.Mutex
	var inputs []event.Event
	ceID := guid.New(guid.KindEntity)
	ce, err := NewConnector(ceID, "remote-transformer", r.net, func(e event.Event) {
		mu.Lock()
		inputs = append(inputs, e)
		mu.Unlock()
	}, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()
	if err := ce.Register(r.rng.ServerID(), profile.Profile{
		Inputs:  []ctxtype.Type{ctxtype.LocationPosition},
		Outputs: []ctxtype.Type{ctxtype.PathRoute},
	}, false); err != nil {
		t.Fatal(err)
	}

	// Local sighting source.
	ds := sensor.NewDoorSensor("d-1", location.Ref{}, r.clk)
	if err := r.rng.AddEntity(ds); err != nil {
		t.Fatal(err)
	}

	// Local CAA subscribes to path.route: the resolver must bind the remote
	// transformer and wire positions into it.
	caa := entity.NewCAA("local-app", nil, r.clk)
	if err := r.rng.AddApplication(caa); err != nil {
		t.Fatal(err)
	}
	q := query.New(caa.ID(), query.What{Pattern: ctxtype.PathRoute}, query.ModeSubscribe)
	if _, err := r.rng.Submit(q); err != nil {
		t.Fatal(err)
	}

	bob := guid.New(guid.KindPerson)
	if err := ds.Sight(bob, "l10.01"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(inputs) >= 1
	})
	mu.Lock()
	in := inputs[0]
	mu.Unlock()
	if in.Type != ctxtype.LocationPosition {
		t.Fatalf("remote CE received %+v", in)
	}
}

func TestHeartbeatKeepsRemoteAlive(t *testing.T) {
	r := newRig(t)
	defer r.close()
	srcID := guid.New(guid.KindDevice)
	src, err := NewConnector(srcID, "remote-door", r.net, nil, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.Register(r.rng.ServerID(), profile.Profile{
		Outputs: []ctxtype.Type{ctxtype.LocationSightingDoor},
	}, false); err != nil {
		t.Fatal(err)
	}
	// Many lease periods pass; connector heartbeats keep the lease fresh.
	for i := 0; i < 30; i++ {
		r.clk.Advance(10 * time.Second)
		time.Sleep(time.Millisecond) // let handlers drain
	}
	if !r.rng.Registrar().IsLive(srcID) {
		t.Fatal("heartbeats did not keep remote alive")
	}
	// Close the connector: heartbeats stop and the lease lapses.
	_ = src.Close()
	waitFor(t, func() bool {
		r.clk.Advance(30 * time.Second)
		return !r.rng.Registrar().IsLive(srcID)
	})
}

func TestDeregister(t *testing.T) {
	r := newRig(t)
	defer r.close()
	srcID := guid.New(guid.KindDevice)
	src, err := NewConnector(srcID, "remote-door", r.net, nil, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.Register(r.rng.ServerID(), profile.Profile{
		Outputs: []ctxtype.Type{ctxtype.LocationSightingDoor},
	}, false); err != nil {
		t.Fatal(err)
	}
	if err := src.Deregister(); err != nil {
		t.Fatal(err)
	}
	if r.rng.Registrar().IsLive(srcID) {
		t.Fatal("still live after deregister")
	}
	// Operations now fail.
	if err := src.Publish(event.New(ctxtype.LocationSightingDoor, srcID, 1, epoch, nil)); err == nil {
		t.Fatal("publish after deregister accepted")
	}
}

func TestRemoteServiceCall(t *testing.T) {
	r := newRig(t)
	defer r.close()
	p1 := sensor.NewPrinter("P1", location.Ref{}, r.clk)
	if err := r.rng.AddEntity(p1); err != nil {
		t.Fatal(err)
	}
	appID := guid.New(guid.KindApplication)
	app, err := NewConnector(appID, "remote-app", r.net, nil, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := app.Register(r.rng.ServerID(), profile.Profile{}, true); err != nil {
		t.Fatal(err)
	}
	// Advertisement query then service call, both over the wire.
	q := query.New(appID, query.What{EntityType: "printer"}, query.ModeAdvertisement)
	res, err := app.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Provider != p1.ID() {
		t.Fatal("wrong provider")
	}
	out, err := app.Call(res.Provider, "submit", map[string]any{"doc": "remote.pdf"})
	if err != nil {
		t.Fatal(err)
	}
	if out["job"] == "" {
		t.Fatal("no job id")
	}
	// Bad call surfaces the error.
	if _, err := app.Call(res.Provider, "bogus", nil); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestQueryErrorPropagates(t *testing.T) {
	r := newRig(t)
	defer r.close()
	appID := guid.New(guid.KindApplication)
	app, err := NewConnector(appID, "remote-app", r.net, nil, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := app.Register(r.rng.ServerID(), profile.Profile{}, true); err != nil {
		t.Fatal(err)
	}
	q := query.New(appID, query.What{Pattern: ctxtype.PrinterQueue}, query.ModeSubscribe)
	if _, err := app.Submit(q); err == nil {
		t.Fatal("unsatisfiable query succeeded")
	}
}

func TestConnectorRequiresRegistration(t *testing.T) {
	r := newRig(t)
	defer r.close()
	c, err := NewConnector(guid.New(guid.KindApplication), "x", r.net, nil, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Submit(query.New(c.ID(), query.What{EntityType: "printer"}, query.ModeProfile)); err != ErrNotRegistered {
		t.Fatalf("submit unregistered: %v", err)
	}
	if err := c.Publish(event.New(ctxtype.PrinterStatus, c.ID(), 1, epoch, nil)); err != ErrNotRegistered {
		t.Fatalf("publish unregistered: %v", err)
	}
	if _, err := c.Call(guid.New(guid.KindDevice), "x", nil); err != ErrNotRegistered {
		t.Fatalf("call unregistered: %v", err)
	}
	if err := c.Deregister(); err != ErrNotRegistered {
		t.Fatalf("deregister unregistered: %v", err)
	}
}

func TestHostRejectsSpoofedEvents(t *testing.T) {
	r := newRig(t)
	defer r.close()
	// A connector publishing an event whose Source is another entity must
	// be dropped.
	evil := guid.New(guid.KindDevice)
	victim := guid.New(guid.KindDevice)
	c, err := NewConnector(evil, "evil", r.net, nil, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Register(r.rng.ServerID(), profile.Profile{
		Outputs: []ctxtype.Type{ctxtype.PrinterStatus},
	}, false); err != nil {
		t.Fatal(err)
	}
	caa := entity.NewCAA("watch", nil, r.clk)
	if err := r.rng.AddApplication(caa); err != nil {
		t.Fatal(err)
	}
	rec, err := r.rng.Mediator().Subscribe(caa.ID(),
		event.Filter{Type: ctxtype.PrinterStatus}, caa.Consume,
		mediator.SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = rec
	spoofed := event.New(ctxtype.PrinterStatus, victim, 1, epoch, nil)
	if err := c.Publish(spoofed); err != nil {
		t.Fatal(err)
	}
	honest := event.New(ctxtype.PrinterStatus, evil, 1, epoch, nil)
	if err := c.Publish(honest); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return caa.PendingEvents() >= 1 })
	time.Sleep(20 * time.Millisecond)
	for _, e := range caa.TakeEvents() {
		if e.Source == victim {
			t.Fatal("spoofed event delivered")
		}
	}
}

// TestConnectorCloseJoinsDeliverLoop: Close must not return while a
// delivery-handler invocation is still in flight — the goroutine-lifecycle
// contract leakcheck enforces statically. Regression test for the
// unjoined deliverLoop: Close used to only close the wakeup channel and
// return, leaving the handler racing the caller's teardown.
func TestConnectorCloseJoinsDeliverLoop(t *testing.T) {
	net := transport.NewMemory(transport.MemoryConfig{})
	entered := make(chan struct{}, 1)
	gate := make(chan struct{})
	handlerDone := make(chan struct{})
	c, err := NewConnector(guid.New(guid.KindApplication), "joined", net, func(event.Event) {
		entered <- struct{}{}
		<-gate
		close(handlerDone)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	c.enqueueDeliveries([]event.Event{mkReading(guid.New(guid.KindDevice), 0)})
	<-entered // the handler is now in flight

	closed := make(chan struct{})
	go func() {
		if err := c.Close(); err != nil {
			t.Error(err)
		}
		close(closed)
	}()
	// Close has no way to finish before the handler does; give it room to
	// return early if the join regresses.
	time.Sleep(10 * time.Millisecond)
	select {
	case <-closed:
		t.Fatal("Close returned while the delivery handler was still running")
	default:
	}

	close(gate)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the handler finished")
	}
	select {
	case <-handlerDone:
	default:
		t.Fatal("Close returned before the in-flight handler invocation completed")
	}
}
