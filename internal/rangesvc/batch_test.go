package rangesvc

import (
	"bytes"
	"log"
	"strings"
	"sync"
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/flow"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/mediator"
	"sci/internal/metrics"
	"sci/internal/profile"
	"sci/internal/query"
	"sci/internal/sensor"
	"sci/internal/server"
	"sci/internal/transport"
	"sci/internal/wire"
)

// batchRig is a rig whose Range enables the outbound wire coalescer.
func batchRig(t testing.TB, maxEvents int, maxDelay time.Duration) *rig {
	t.Helper()
	clk := clock.NewManual(epoch)
	rng := server.New(server.Config{
		Name:           "level-10",
		Clock:          clk,
		BatchMaxEvents: maxEvents,
		BatchMaxDelay:  maxDelay,
	})
	net := transport.NewMemory(transport.MemoryConfig{Clock: clk})
	host, err := NewHost(rng, net, clk)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{rng: rng, host: host, net: net, clk: clk}
}

// tap attaches a raw endpoint that records every wire message sent to id.
func tap(t testing.TB, net *transport.Memory, id guid.GUID) func() []wire.Message {
	t.Helper()
	var mu sync.Mutex
	var got []wire.Message
	if _, err := net.Attach(id, func(m wire.Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	return func() []wire.Message {
		mu.Lock()
		defer mu.Unlock()
		out := make([]wire.Message, len(got))
		copy(out, got)
		return out
	}
}

func mkReading(src guid.GUID, seq uint64) event.Event {
	return event.New(ctxtype.TemperatureCelsius, src, seq, epoch, map[string]any{"value": float64(seq)})
}

func TestCoalescedRemoteDeliveryMessageBudget(t *testing.T) {
	r := batchRig(t, 4, 50*time.Millisecond)
	defer r.close()
	dest := guid.New(guid.KindApplication)
	msgs := tap(t, r.net, dest)
	src := guid.New(guid.KindDevice)

	// 10 deliveries at batch size 4: two full batches flush on fill; the
	// trailing partial waits for the delay timer.
	for i := 0; i < 10; i++ {
		r.host.sendEvent(dest, mkReading(src, uint64(i)))
	}
	waitFor(t, func() bool { return len(msgs()) == 2 })
	r.clk.Advance(50 * time.Millisecond)
	waitFor(t, func() bool { return len(msgs()) == 3 })

	var seqs []uint64
	for _, m := range msgs() {
		if m.Kind != wire.KindEventBatch {
			t.Fatalf("got %s message, want %s", m.Kind, wire.KindEventBatch)
		}
		frames, err := m.EventFrames()
		if err != nil {
			t.Fatal(err)
		}
		if len(frames) > 4 {
			t.Fatalf("batch of %d exceeds BatchMaxEvents=4", len(frames))
		}
		for _, f := range frames {
			e, err := event.Decode(f)
			if err != nil {
				t.Fatal(err)
			}
			seqs = append(seqs, e.Seq)
		}
	}
	if len(seqs) != 10 {
		t.Fatalf("delivered %d events, want 10", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("coalescing reordered events: %v", seqs)
		}
	}
	if got := r.rng.RemoteBatchesSent.Value(); got != 3 {
		t.Fatalf("RemoteBatchesSent = %d, want 3 (= ceil(10/4))", got)
	}
	if got := r.rng.RemoteEventsSent.Value(); got != 10 {
		t.Fatalf("RemoteEventsSent = %d, want 10", got)
	}
}

func TestBatchDelayFlushesPartialBatch(t *testing.T) {
	r := batchRig(t, 64, 10*time.Millisecond)
	defer r.close()
	dest := guid.New(guid.KindApplication)
	msgs := tap(t, r.net, dest)

	r.host.sendEvent(dest, mkReading(guid.New(guid.KindDevice), 1))
	if len(msgs()) != 0 {
		t.Fatal("partial batch flushed before the delay elapsed")
	}
	r.clk.Advance(10 * time.Millisecond)
	waitFor(t, func() bool { return len(msgs()) == 1 })
	frames, err := msgs()[0].EventFrames()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("flushed %d events, want 1", len(frames))
	}
}

func TestUnbatchedHostSendsLegacySingleEventFrames(t *testing.T) {
	r := newRig(t) // BatchMaxEvents unset: coalescing disabled
	defer r.close()
	dest := guid.New(guid.KindApplication)
	msgs := tap(t, r.net, dest)

	r.host.sendEvent(dest, mkReading(guid.New(guid.KindDevice), 7))
	waitFor(t, func() bool { return len(msgs()) == 1 })
	if m := msgs()[0]; m.Kind != wire.KindEvent {
		t.Fatalf("kind = %s, want legacy %s", m.Kind, wire.KindEvent)
	}
}

// TestConnectorPublishAllIngested sends a remote CE's batch over the wire
// and checks the Range ingests it through the batched dispatch path,
// dropping spoofed sources per event.
func TestConnectorPublishAllIngested(t *testing.T) {
	r := newRig(t)
	defer r.close()
	ceID := guid.New(guid.KindDevice)
	c, err := NewConnector(ceID, "remote-thermo", r.net, nil, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Register(r.rng.ServerID(), profile.Profile{
		Outputs: []ctxtype.Type{ctxtype.TemperatureCelsius},
		Quality: 0.9,
	}, false); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var got []event.Event
	if _, err := r.rng.Mediator().Subscribe(guid.New(guid.KindSoftware),
		event.Filter{Type: ctxtype.TemperatureCelsius}, func(e event.Event) {
			mu.Lock()
			got = append(got, e)
			mu.Unlock()
		}, mediator.SubOptions{}); err != nil {
		t.Fatal(err)
	}

	invalid := mkReading(ceID, 9)
	invalid.ID = guid.Nil // structurally invalid: must not poison the batch
	batch := []event.Event{
		mkReading(ceID, 1),
		mkReading(guid.New(guid.KindDevice), 2), // spoofed: not the sender
		invalid,
		mkReading(ceID, 3),
	}
	if err := c.PublishAll(batch); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 2
	})
	mu.Lock()
	defer mu.Unlock()
	if got[0].Seq != 1 || got[1].Seq != 3 {
		t.Fatalf("wrong events ingested: %v", got)
	}
	for _, e := range got {
		if e.Range != r.rng.ID() {
			t.Fatal("ingested event not stamped with the range id")
		}
	}
}

func TestSendFailureMetricAndTransitionLog(t *testing.T) {
	var logged bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&logged)
	defer log.SetOutput(prev)

	r := newRig(t)
	defer r.close()
	dest := guid.New(guid.KindApplication) // never attached: sends fail

	r.host.sendEvent(dest, mkReading(guid.New(guid.KindDevice), 1))
	r.host.sendEvent(dest, mkReading(guid.New(guid.KindDevice), 2))
	if got := r.rng.RemoteSendFailures.Value(); got != 2 {
		t.Fatalf("RemoteSendFailures = %d, want 2", got)
	}
	if n := strings.Count(logged.String(), "failing"); n != 1 {
		t.Fatalf("logged %d failure transitions for 2 consecutive failures, want 1\n%s", n, logged.String())
	}

	// The endpoint appears: the next send succeeds and logs one recovery.
	msgs := tap(t, r.net, dest)
	r.host.sendEvent(dest, mkReading(guid.New(guid.KindDevice), 3))
	waitFor(t, func() bool { return len(msgs()) == 1 })
	if n := strings.Count(logged.String(), "recovered"); n != 1 {
		t.Fatalf("logged %d recovery transitions, want 1\n%s", n, logged.String())
	}
	if got := r.rng.RemoteSendFailures.Value(); got != 2 {
		t.Fatalf("successful send must not count as failure; got %d", got)
	}

	reg := new(metrics.Registry)
	r.rng.FillMetrics(reg)
	if got := reg.Gauge("remote.send_failures").Value(); got != 2 {
		t.Fatalf("FillMetrics remote.send_failures = %d, want 2", got)
	}
	if got := reg.Gauge("remote.events_sent").Value(); got != 1 {
		t.Fatalf("FillMetrics remote.events_sent = %d, want 1", got)
	}
}

// TestBatchFedRemoteCAABudget drives the whole batch-native delivery chain:
// sensor emissions cross the mediator's batched root subscription into the
// remote CAA's proxy, whose ConsumeAll feeds the outbound coalescer a slice
// per run — and the wire cost stays exactly ⌈N/BatchMaxEvents⌉ messages.
func TestBatchFedRemoteCAABudget(t *testing.T) {
	r := batchRig(t, 4, 50*time.Millisecond)
	defer r.close()
	thermo := sensor.NewTemperatureSensor("probe", location.Ref{}, 294, 2, 1, r.clk)
	if err := r.rng.AddEntity(thermo); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var got []event.Event
	appID := guid.New(guid.KindApplication)
	app, err := NewConnector(appID, "remote-app", r.net, func(e event.Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	}, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := app.Register(r.rng.ServerID(), profile.Profile{}, true); err != nil {
		t.Fatal(err)
	}
	q := query.New(appID, query.What{Pattern: ctxtype.TemperatureKelvin}, query.ModeSubscribe)
	if _, err := app.Submit(q); err != nil {
		t.Fatal(err)
	}

	const n = 10
	base := r.rng.RemoteBatchesSent.Value()
	baseEvents := r.rng.RemoteEventsSent.Value()
	for i := 0; i < n; i++ {
		if err := thermo.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	// Two full batches leave on fill; the trailing partial (10 mod 4 = 2)
	// is held for the delay timer however the delivery runs were sliced.
	waitFor(t, func() bool {
		r.host.mu.Lock()
		q := r.host.out[appID]
		r.host.mu.Unlock()
		return q != nil && q.PendingLen() == n%4
	})
	r.clk.Advance(50 * time.Millisecond)
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= n
	})
	if sent := r.rng.RemoteBatchesSent.Value() - base; sent != 3 {
		t.Fatalf("RemoteBatchesSent = %d, want 3 (= ceil(10/4))", sent)
	}
	if sent := r.rng.RemoteEventsSent.Value() - baseEvents; sent != n {
		t.Fatalf("RemoteEventsSent = %d, want %d", sent, n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("remote CAA received %d events, want %d", len(got), n)
	}
}

// adaptiveRig is a rig whose Range enables rate-adaptive coalescing.
func adaptiveRig(t testing.TB, maxEvents int, maxDelay time.Duration) *rig {
	t.Helper()
	clk := clock.NewManual(epoch)
	rng := server.New(server.Config{
		Name:             "level-10",
		Clock:            clk,
		BatchMaxEvents:   maxEvents,
		BatchMaxDelay:    maxDelay,
		AdaptiveBatching: flow.Adaptive{Enabled: true},
	})
	net := transport.NewMemory(transport.MemoryConfig{Clock: clk})
	host, err := NewHost(rng, net, clk)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{rng: rng, host: host, net: net, clk: clk}
}

// TestAdaptiveIdleEndpointFlushesImmediately: with AdaptiveBatching on, an
// idle endpoint's effective batch sits at the floor, so a lone delivery
// ships at once instead of waiting out BatchMaxDelay — while a hot
// endpoint's coalescer ramps to the ceiling and still honours the
// ⌈N/effectiveBatch⌉ wire budget.
func TestAdaptiveIdleEndpointFlushesImmediately(t *testing.T) {
	r := adaptiveRig(t, 64, 50*time.Millisecond)
	defer r.close()
	idle := guid.New(guid.KindApplication)
	idleMsgs := tap(t, r.net, idle)
	src := guid.New(guid.KindDevice)

	// Idle endpoint: one event, no clock advance — it must not wait for the
	// 50ms delay timer.
	r.host.sendEvent(idle, mkReading(src, 1))
	waitFor(t, func() bool { return len(idleMsgs()) == 1 })

	// Hot endpoint: a sustained 100-events-per-5ms stream ramps its own
	// coalescer to the ceiling without touching the idle endpoint's.
	hot := guid.New(guid.KindApplication)
	hotMsgs := tap(t, r.net, hot)
	for i := 0; i < 50; i++ {
		r.clk.Advance(5 * time.Millisecond)
		batch := make([]event.Event, 100)
		for j := range batch {
			batch[j] = mkReading(src, uint64(i*100+j))
		}
		r.host.sendEvents(hot, batch)
	}
	r.host.mu.Lock()
	hq := r.host.out[hot]
	iq := r.host.out[idle]
	r.host.mu.Unlock()
	if got := hq.EffectiveBatch(); got != 64 {
		t.Fatalf("hot endpoint effective batch = %d, want the 64 ceiling", got)
	}
	if got := iq.EffectiveBatch(); got != 1 {
		t.Fatalf("idle endpoint effective batch = %d, want the floor 1", got)
	}
	// Wire budget: every hot message carries at most the ceiling, and the
	// full stream arrives.
	r.clk.Advance(50 * time.Millisecond)
	waitFor(t, func() bool {
		total := 0
		for _, m := range hotMsgs() {
			frames, err := m.EventFrames()
			if err != nil {
				t.Fatal(err)
			}
			if len(frames) > 64 {
				t.Fatalf("hot batch of %d exceeds the ceiling", len(frames))
			}
			total += len(frames)
		}
		return total == 50*100
	})
}

// blockingConnector attaches a connector whose onEvent parks on gate, so
// its bounded delivery queue can be overflowed deterministically.
func blockingConnector(t *testing.T, r *rig, id guid.GUID, gate chan struct{}) *Connector {
	t.Helper()
	c, err := NewConnector(id, "slow-app", r.net, func(event.Event) {
		<-gate
	}, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestReceiverOverloadThrottlesHostCoalescer: a connector that cannot keep
// up reports its delivery-queue drops on event.batch acks, and the host's
// per-endpoint coalescer throttles its flush rate in response — visible in
// the Range's backpressure gauges.
func TestReceiverOverloadThrottlesHostCoalescer(t *testing.T) {
	r := batchRig(t, 4, 50*time.Millisecond)
	defer r.close()
	dest := guid.New(guid.KindApplication)
	gate := make(chan struct{})
	c := blockingConnector(t, r, dest, gate)
	defer c.Close()
	c.SetDeliveryQueueCap(2)

	src := guid.New(guid.KindDevice)
	burst := func(base, n int) []event.Event {
		out := make([]event.Event, n)
		for i := range out {
			out[i] = mkReading(src, uint64(base+i))
		}
		return out
	}
	// Three full batches against a blocked two-slot queue: overflow drops
	// are certain, their acks must throttle the sender. Drop-bearing
	// reports are rate-limited to one per ack window, so the manual clock
	// must run the windows out for the later reports to leave.
	r.host.sendEvents(dest, burst(0, 12))
	r.host.mu.Lock()
	q := r.host.out[dest]
	r.host.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for !q.Throttled() {
		if time.Now().After(deadline) {
			t.Fatal("collapsing credit never throttled the host coalescer")
		}
		r.clk.Advance(2 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	if got := r.rng.FlowStats().DropsReported.Value(); got == 0 {
		t.Fatal("receiver drops never reached the sender's stats")
	}
	if got := r.rng.StatsMap()["remote_backpressure_throttled"]; got != 1 {
		t.Fatalf("remote_backpressure_throttled = %v, want 1", got)
	}
	if got := c.DeliveryDrops(); got == 0 {
		t.Fatal("connector reported no delivery drops")
	}
	close(gate) // release the consumer
}

// TestHostAcksPublishesWithCredit: a remote CE's batched publish is
// acknowledged with the Range's dispatch-drop credit, so remote publishers
// can observe the drops their traffic causes (old hosts simply never ack).
func TestHostAcksPublishesWithCredit(t *testing.T) {
	r := newRig(t)
	defer r.close()
	ceID := guid.New(guid.KindDevice)
	c, err := NewConnector(ceID, "remote-thermo", r.net, nil, r.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Register(r.rng.ServerID(), profile.Profile{
		Outputs: []ctxtype.Type{ctxtype.TemperatureCelsius},
		Quality: 0.9,
	}, false); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.RemoteCredit(); ok {
		t.Fatal("credit reported before any batch was published")
	}
	if err := c.PublishAll([]event.Event{mkReading(ceID, 1), mkReading(ceID, 2)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		_, ok := c.RemoteCredit()
		return ok
	})
	credit, _ := c.RemoteCredit()
	if credit.Events != 2 {
		t.Fatalf("ack credit events = %d, want 2", credit.Events)
	}
}
