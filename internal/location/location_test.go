package location

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testMap builds a small two-floor building:
//
//	Floor L10:  lobby — corridor — 01 — 02 (02's door locked)
//	                      |
//	                     stairs (cross-frame to L9)
//	Floor L9:   stairs9 — open9
func testMap(t testing.TB) *Map {
	t.Helper()
	places := []Place{
		{ID: "l10.lobby", Path: "campus/lt/l10/lobby", Centroid: Point{Frame: "L10", X: 0, Y: 0}, Kind: "lobby"},
		{ID: "l10.corridor", Path: "campus/lt/l10/corridor", Centroid: Point{Frame: "L10", X: 10, Y: 0}, Kind: "corridor"},
		{ID: "l10.01", Path: "campus/lt/l10/l10.01", Centroid: Point{Frame: "L10", X: 20, Y: 0}, Kind: "room"},
		{ID: "l10.02", Path: "campus/lt/l10/l10.02", Centroid: Point{Frame: "L10", X: 30, Y: 0}, Kind: "room"},
		{ID: "l10.stairs", Path: "campus/lt/l10/stairs", Centroid: Point{Frame: "L10", X: 10, Y: 10}, Kind: "stairs"},
		{ID: "l9.stairs", Path: "campus/lt/l9/stairs", Centroid: Point{Frame: "L9", X: 10, Y: 10}, Kind: "stairs"},
		{ID: "l9.open", Path: "campus/lt/l9/open", Centroid: Point{Frame: "L9", X: 0, Y: 10}, Kind: "open-space"},
	}
	links := []Link{
		{A: "l10.lobby", B: "l10.corridor", Door: "d-lobby"},
		{A: "l10.corridor", B: "l10.01", Door: "d-1001"},
		{A: "l10.corridor", B: "l10.02", Door: "d-1002", Locked: true},
		{A: "l10.corridor", B: "l10.stairs"},
		{A: "l10.stairs", B: "l9.stairs", Weight: 5},
		{A: "l9.stairs", B: "l9.open"},
	}
	m, err := NewMap(places, links)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPointDistance(t *testing.T) {
	a := Point{Frame: "F", X: 0, Y: 0}
	b := Point{Frame: "F", X: 3, Y: 4}
	if d := a.Distance(b); d != 5 {
		t.Fatalf("distance = %v, want 5", d)
	}
	c := Point{Frame: "G", X: 0, Y: 0}
	if !math.IsInf(a.Distance(c), 1) {
		t.Fatal("cross-frame distance must be +Inf")
	}
}

func TestPathOperations(t *testing.T) {
	p := Path("campus/lt/l10/l10.01")
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if Path("").Validate() == nil || Path("a//b").Validate() == nil {
		t.Fatal("invalid paths accepted")
	}
	if !Path("campus/lt").Contains(p) || !p.Contains(p) {
		t.Fatal("Contains false negative")
	}
	if Path("campus/l").Contains(p) {
		t.Fatal("Contains must match whole segments")
	}
	if p.Leaf() != "l10.01" {
		t.Fatalf("Leaf = %q", p.Leaf())
	}
	if p.Parent() != "campus/lt/l10" {
		t.Fatalf("Parent = %q", p.Parent())
	}
	if Path("campus").Parent() != "" {
		t.Fatal("root parent must be empty")
	}
	if p.Depth() != 4 || Path("").Depth() != 0 {
		t.Fatal("Depth broken")
	}
}

func TestRefBasics(t *testing.T) {
	if !(Ref{}).Empty() {
		t.Fatal("zero Ref should be empty")
	}
	r := AtPlace("l10.01")
	if r.Empty() || len(r.Models()) != 1 || r.Models()[0] != ModelTopological {
		t.Fatal("AtPlace broken")
	}
	r2 := AtPoint("L10", 1, 2)
	if r2.Point == nil || r2.Point.X != 1 {
		t.Fatal("AtPoint broken")
	}
	r3 := AtPath("a/b")
	if r3.Path != "a/b" {
		t.Fatal("AtPath broken")
	}
	for _, r := range []Ref{r, r2, r3, {}} {
		if r.String() == "" {
			t.Fatal("empty String")
		}
	}
	if ModelGeometric.String() != "geometric" || Model(99).String() == "" {
		t.Fatal("Model.String broken")
	}
}

func TestNewMapValidation(t *testing.T) {
	good := Place{ID: "a", Path: "x/a", Centroid: Point{Frame: "F"}}
	cases := []struct {
		name   string
		places []Place
		links  []Link
	}{
		{"empty id", []Place{{Path: "x/a"}}, nil},
		{"bad path", []Place{{ID: "a", Path: "x//a"}}, nil},
		{"dup id", []Place{good, {ID: "a", Path: "x/b"}}, nil},
		{"dup path", []Place{good, {ID: "b", Path: "x/a"}}, nil},
		{"link to unknown", []Place{good}, []Link{{A: "a", B: "zzz"}}},
		{"negative weight", []Place{good, {ID: "b", Path: "x/b", Centroid: Point{Frame: "F"}}},
			[]Link{{A: "a", B: "b", Weight: -1}}},
	}
	for _, c := range cases {
		if _, err := NewMap(c.places, c.links); err == nil {
			t.Errorf("%s: NewMap accepted invalid input", c.name)
		}
	}
}

func TestResolveFromEachModel(t *testing.T) {
	m := testMap(t)

	// Topological → all three.
	r, err := m.Resolve(AtPlace("l10.01"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Place != "l10.01" || r.Path != "campus/lt/l10/l10.01" || r.Point == nil {
		t.Fatalf("resolve from place: %v", r)
	}
	if r.Point.X != 20 {
		t.Fatal("centroid not filled")
	}

	// Hierarchical → all three.
	r, err = m.Resolve(AtPath("campus/lt/l10/lobby"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Place != "l10.lobby" {
		t.Fatalf("resolve from path: %v", r)
	}

	// Geometric → nearest place in frame; the observed point is preserved.
	r, err = m.Resolve(AtPoint("L10", 19, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Place != "l10.01" {
		t.Fatalf("nearest place = %v, want l10.01", r.Place)
	}
	if r.Point.X != 19 || r.Point.Y != 1 {
		t.Fatal("observed point must be preserved over centroid")
	}

	// Unresolvable.
	if _, err := m.Resolve(Ref{}); !errors.Is(err, ErrUnresolvable) {
		t.Fatalf("empty ref: %v", err)
	}
	if _, err := m.Resolve(AtPoint("NOWHERE", 0, 0)); !errors.Is(err, ErrUnresolvable) {
		t.Fatalf("unknown frame: %v", err)
	}
	// Unknown path resolves to nothing.
	if _, err := m.Resolve(AtPath("campus/unknown")); err == nil {
		t.Fatal("unknown path resolved")
	}
}

func TestSamePlace(t *testing.T) {
	m := testMap(t)
	same, err := m.SamePlace(AtPath("campus/lt/l10/l10.01"), AtPoint("L10", 21, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatal("path and nearby point should be the same place")
	}
	same, err = m.SamePlace(AtPlace("l10.01"), AtPlace("l10.02"))
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Fatal("different rooms reported same")
	}
	if _, err := m.SamePlace(Ref{}, AtPlace("l10.01")); err == nil {
		t.Fatal("unresolvable ref accepted")
	}
	if _, err := m.SamePlace(AtPlace("l10.01"), Ref{}); err == nil {
		t.Fatal("unresolvable ref accepted")
	}
}

func TestShortestRouteBasics(t *testing.T) {
	m := testMap(t)
	r, err := m.ShortestRoute(AtPlace("l10.lobby"), AtPlace("l10.01"))
	if err != nil {
		t.Fatal(err)
	}
	want := []PlaceID{"l10.lobby", "l10.corridor", "l10.01"}
	if len(r.Places) != len(want) {
		t.Fatalf("route = %v", r.Places)
	}
	for i := range want {
		if r.Places[i] != want[i] {
			t.Fatalf("route = %v, want %v", r.Places, want)
		}
	}
	if r.Hops() != 2 {
		t.Fatalf("hops = %d", r.Hops())
	}
	if r.Length != 20 {
		t.Fatalf("length = %v, want 20", r.Length)
	}
	if len(r.Doors) != 2 || r.Doors[0] != "d-lobby" || r.Doors[1] != "d-1001" {
		t.Fatalf("doors = %v", r.Doors)
	}
}

func TestShortestRouteSamePlace(t *testing.T) {
	m := testMap(t)
	r, err := m.ShortestRoute(AtPlace("l10.01"), AtPlace("l10.01"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Hops() != 0 || r.Length != 0 {
		t.Fatalf("self route = %+v", r)
	}
}

func TestShortestRouteLockedDoors(t *testing.T) {
	m := testMap(t)
	// l10.02 is behind a locked door: unreachable by default.
	if _, err := m.ShortestRoute(AtPlace("l10.lobby"), AtPlace("l10.02")); !errors.Is(err, ErrNoPath) {
		t.Fatalf("locked door traversed: %v", err)
	}
	// With the option it opens.
	r, err := m.ShortestRoute(AtPlace("l10.lobby"), AtPlace("l10.02"), ThroughLockedDoors())
	if err != nil {
		t.Fatal(err)
	}
	if r.Places[len(r.Places)-1] != "l10.02" {
		t.Fatalf("route = %v", r.Places)
	}
}

func TestShortestRouteCrossFloor(t *testing.T) {
	m := testMap(t)
	r, err := m.ShortestRoute(AtPlace("l10.01"), AtPlace("l9.open"))
	if err != nil {
		t.Fatal(err)
	}
	// Must pass through both stairs.
	seen := map[PlaceID]bool{}
	for _, p := range r.Places {
		seen[p] = true
	}
	if !seen["l10.stairs"] || !seen["l9.stairs"] {
		t.Fatalf("cross-floor route misses stairs: %v", r.Places)
	}
}

func TestTravelDistance(t *testing.T) {
	m := testMap(t)
	d := m.TravelDistance(AtPlace("l10.lobby"), AtPlace("l10.01"))
	if d != 20 {
		t.Fatalf("travel distance = %v", d)
	}
	if !math.IsInf(m.TravelDistance(AtPlace("l10.lobby"), AtPlace("l10.02")), 1) {
		t.Fatal("unreachable place must be +Inf")
	}
}

func TestNearestPlaceTieBreakDeterministic(t *testing.T) {
	places := []Place{
		{ID: "b", Path: "x/b", Centroid: Point{Frame: "F", X: 1, Y: 0}},
		{ID: "a", Path: "x/a", Centroid: Point{Frame: "F", X: -1, Y: 0}},
	}
	m, err := NewMap(places, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Equidistant: the lexicographically smaller id must win, always.
	for i := 0; i < 10; i++ {
		got, err := m.NearestPlace(Point{Frame: "F", X: 0, Y: 0})
		if err != nil {
			t.Fatal(err)
		}
		if got != "a" {
			t.Fatalf("tie break = %q, want a", got)
		}
	}
}

func TestMapAccessors(t *testing.T) {
	m := testMap(t)
	if _, ok := m.Place("l10.01"); !ok {
		t.Fatal("Place lookup failed")
	}
	if _, ok := m.Place("zzz"); ok {
		t.Fatal("unknown place found")
	}
	ps := m.Places()
	if len(ps) != 7 {
		t.Fatalf("Places len = %d", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1] >= ps[i] {
			t.Fatal("Places not sorted")
		}
	}
	if len(m.Links()) != 6 {
		t.Fatal("Links length wrong")
	}
	if id, ok := m.PlaceAtPath("campus/lt/l10/l10.01"); !ok || id != "l10.01" {
		t.Fatal("PlaceAtPath broken")
	}
}

// Property: resolving an already-resolved ref is idempotent.
func TestPropResolveIdempotent(t *testing.T) {
	m := testMap(t)
	ids := m.Places()
	f := func(i uint8) bool {
		r, err := m.Resolve(AtPlace(ids[int(i)%len(ids)]))
		if err != nil {
			return false
		}
		r2, err := m.Resolve(r)
		if err != nil {
			return false
		}
		return r2.Place == r.Place && r2.Path == r.Path
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: ShortestRoute is symmetric in length (undirected graph) and
// satisfies the triangle inequality through any intermediate place.
func TestPropRouteMetricProperties(t *testing.T) {
	m := testMap(t)
	// Exclude the locked room, unreachable by default.
	var ids []PlaceID
	for _, id := range m.Places() {
		if id != "l10.02" {
			ids = append(ids, id)
		}
	}
	f := func(i, j, k uint8) bool {
		a := ids[int(i)%len(ids)]
		b := ids[int(j)%len(ids)]
		c := ids[int(k)%len(ids)]
		dab := m.TravelDistance(AtPlace(a), AtPlace(b))
		dba := m.TravelDistance(AtPlace(b), AtPlace(a))
		if math.Abs(dab-dba) > 1e-9 {
			return false
		}
		dac := m.TravelDistance(AtPlace(a), AtPlace(c))
		dcb := m.TravelDistance(AtPlace(c), AtPlace(b))
		return dab <= dac+dcb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every route's reported Length equals the sum of its link
// weights, and consecutive places are actually linked.
func TestPropRouteConsistency(t *testing.T) {
	m := testMap(t)
	adjW := map[[2]PlaceID]float64{}
	for _, l := range m.Links() {
		pa, _ := m.Place(l.A)
		pb, _ := m.Place(l.B)
		w := l.Weight
		if w == 0 {
			w = pa.Centroid.Distance(pb.Centroid)
			if math.IsInf(w, 1) {
				w = 1
			}
		}
		adjW[[2]PlaceID{l.A, l.B}] = w
		adjW[[2]PlaceID{l.B, l.A}] = w
	}
	ids := m.Places()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a := ids[rng.Intn(len(ids))]
		b := ids[rng.Intn(len(ids))]
		r, err := m.ShortestRoute(AtPlace(a), AtPlace(b), ThroughLockedDoors())
		if err != nil {
			t.Fatalf("route %s→%s: %v", a, b, err)
		}
		var sum float64
		for i := 1; i < len(r.Places); i++ {
			w, ok := adjW[[2]PlaceID{r.Places[i-1], r.Places[i]}]
			if !ok {
				t.Fatalf("route uses non-link %s–%s", r.Places[i-1], r.Places[i])
			}
			sum += w
		}
		if math.Abs(sum-r.Length) > 1e-9 {
			t.Fatalf("length %v != sum %v", r.Length, sum)
		}
	}
}

func BenchmarkShortestRoute(b *testing.B) {
	m := testMap(b)
	from, to := AtPlace("l10.lobby"), AtPlace("l9.open")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.ShortestRoute(from, to); err != nil {
			b.Fatal(err)
		}
	}
}
