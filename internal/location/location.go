// Package location implements SCI's model of location (paper, Section 3.3).
//
// The paper: "it is preferable to support many types of location model and
// interoperate between them if necessary. For example it may be necessary to
// convert geometric information to a hierarchical model or similarly convert
// network signal strength to a geometric position. To facilitate this it
// will be necessary to develop an intermediate location language."
//
// Three models are provided:
//
//   - Geometric: 2-D coordinates in metres within a named frame (a floor).
//   - Hierarchical: slash-separated containment paths
//     ("campus/livingstone-tower/l10/l10.01").
//   - Topological: a graph of places connected by doors/links, with a
//     shortest-path engine — this is what the pathCE of Section 3.2 uses.
//
// The intermediate language is the Ref type: a tagged union carrying any of
// the three representations, convertible between models through a Map (the
// building's ground truth, held by each Range's Location Service).
package location

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Model enumerates the supported location models.
type Model int

// Supported models.
const (
	ModelUnknown Model = iota
	ModelGeometric
	ModelHierarchical
	ModelTopological
)

var modelNames = [...]string{
	ModelUnknown:      "unknown",
	ModelGeometric:    "geometric",
	ModelHierarchical: "hierarchical",
	ModelTopological:  "topological",
}

// String returns the model name.
func (m Model) String() string {
	if int(m) < len(modelNames) {
		return modelNames[m]
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// Point is a geometric position in metres within a named frame. A frame is
// typically one floor of a building.
type Point struct {
	Frame string  `json:"frame"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
}

// Distance returns the Euclidean distance to o. Points in different frames
// are incomparable; Distance returns +Inf for them.
func (p Point) Distance(o Point) float64 {
	if p.Frame != o.Frame {
		return math.Inf(1)
	}
	dx, dy := p.X-o.X, p.Y-o.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Path is a hierarchical containment path, e.g.
// "campus/livingstone-tower/l10/l10.01". Segments are lower-case.
type Path string

// Validate checks well-formedness.
func (p Path) Validate() error {
	if p == "" {
		return errors.New("location: empty hierarchical path")
	}
	for _, seg := range strings.Split(string(p), "/") {
		if seg == "" {
			return fmt.Errorf("location: path %q has empty segment", p)
		}
	}
	return nil
}

// Contains reports whether p is o itself or an ancestor of o.
func (p Path) Contains(o Path) bool {
	return p == o || strings.HasPrefix(string(o), string(p)+"/")
}

// Leaf returns the final segment (the place name).
func (p Path) Leaf() string {
	i := strings.LastIndexByte(string(p), '/')
	return string(p[i+1:])
}

// Parent returns the containing path, or "" at the root.
func (p Path) Parent() Path {
	i := strings.LastIndexByte(string(p), '/')
	if i < 0 {
		return ""
	}
	return p[:i]
}

// Depth returns the number of segments.
func (p Path) Depth() int {
	if p == "" {
		return 0
	}
	return strings.Count(string(p), "/") + 1
}

// PlaceID names a node in the topological model ("l10.01", "l10.corridor").
type PlaceID string

// Ref is the intermediate location language: a location expressed in one or
// more models at once. A Ref with several representations filled is already
// cross-model resolved; converters fill missing representations from a Map.
type Ref struct {
	// Point is the geometric representation, if known.
	Point *Point `json:"point,omitempty"`
	// Path is the hierarchical representation, if known.
	Path Path `json:"path,omitempty"`
	// Place is the topological representation, if known.
	Place PlaceID `json:"place,omitempty"`
}

// Empty reports whether no representation is present.
func (r Ref) Empty() bool {
	return r.Point == nil && r.Path == "" && r.Place == ""
}

// Models lists the representations present.
func (r Ref) Models() []Model {
	var out []Model
	if r.Point != nil {
		out = append(out, ModelGeometric)
	}
	if r.Path != "" {
		out = append(out, ModelHierarchical)
	}
	if r.Place != "" {
		out = append(out, ModelTopological)
	}
	return out
}

// String renders a compact form.
func (r Ref) String() string {
	var parts []string
	if r.Point != nil {
		parts = append(parts, fmt.Sprintf("geo(%s:%.1f,%.1f)", r.Point.Frame, r.Point.X, r.Point.Y))
	}
	if r.Path != "" {
		parts = append(parts, "hier("+string(r.Path)+")")
	}
	if r.Place != "" {
		parts = append(parts, "topo("+string(r.Place)+")")
	}
	if len(parts) == 0 {
		return "loc(?)"
	}
	return strings.Join(parts, "+")
}

// AtPlace builds a topological Ref.
func AtPlace(p PlaceID) Ref { return Ref{Place: p} }

// AtPath builds a hierarchical Ref.
func AtPath(p Path) Ref { return Ref{Path: p} }

// AtPoint builds a geometric Ref.
func AtPoint(frame string, x, y float64) Ref {
	return Ref{Point: &Point{Frame: frame, X: x, Y: y}}
}

// Place is the ground truth about one place, tying the three models
// together: a topological node with a hierarchical path and a geometric
// centroid.
type Place struct {
	ID       PlaceID `json:"id"`
	Path     Path    `json:"path"`
	Centroid Point   `json:"centroid"`
	// Kind is a free-form tag ("room", "corridor", "lobby", "open-space").
	Kind string `json:"kind,omitempty"`
}

// Link is a traversable connection between two places (a door, a stairwell,
// a corridor junction). Links are symmetric.
type Link struct {
	A PlaceID `json:"a"`
	B PlaceID `json:"b"`
	// Weight is the traversal cost in metres; 0 means derive from centroid
	// distance.
	Weight float64 `json:"weight,omitempty"`
	// Door optionally names the door sensor on this link (CAPA: doors carry
	// badge sensors).
	Door string `json:"door,omitempty"`
	// Locked marks doors that cannot be traversed without access (the
	// printer P3 scenario of Section 5).
	Locked bool `json:"locked,omitempty"`
}

// Map is the ground truth for a deployment area: the place graph plus the
// cross-model correspondences. It is immutable after Build; Lookup methods
// are safe for concurrent use.
type Map struct {
	places map[PlaceID]Place
	byPath map[Path]PlaceID
	adj    map[PlaceID][]edge
	links  []Link
}

type edge struct {
	to     PlaceID
	weight float64
	locked bool
	door   string
}

// Errors.
var (
	ErrUnknownPlace = errors.New("location: unknown place")
	ErrNoPath       = errors.New("location: no traversable path")
	ErrUnresolvable = errors.New("location: cannot resolve between models")
)

// NewMap validates and indexes places and links.
func NewMap(places []Place, links []Link) (*Map, error) {
	m := &Map{
		places: make(map[PlaceID]Place, len(places)),
		byPath: make(map[Path]PlaceID, len(places)),
		adj:    make(map[PlaceID][]edge),
		links:  make([]Link, 0, len(links)),
	}
	for _, p := range places {
		if p.ID == "" {
			return nil, errors.New("location: place with empty id")
		}
		if err := p.Path.Validate(); err != nil {
			return nil, fmt.Errorf("location: place %q: %w", p.ID, err)
		}
		if _, dup := m.places[p.ID]; dup {
			return nil, fmt.Errorf("location: duplicate place %q", p.ID)
		}
		if prev, dup := m.byPath[p.Path]; dup {
			return nil, fmt.Errorf("location: path %q used by %q and %q", p.Path, prev, p.ID)
		}
		m.places[p.ID] = p
		m.byPath[p.Path] = p.ID
	}
	for _, l := range links {
		pa, okA := m.places[l.A]
		pb, okB := m.places[l.B]
		if !okA || !okB {
			return nil, fmt.Errorf("%w: link %s–%s", ErrUnknownPlace, l.A, l.B)
		}
		w := l.Weight
		if w == 0 {
			w = pa.Centroid.Distance(pb.Centroid)
			if math.IsInf(w, 1) {
				w = 1 // cross-frame links (stairs/lifts) default to unit cost
			}
		}
		if w <= 0 {
			return nil, fmt.Errorf("location: non-positive link weight %s–%s", l.A, l.B)
		}
		m.adj[l.A] = append(m.adj[l.A], edge{to: l.B, weight: w, locked: l.Locked, door: l.Door})
		m.adj[l.B] = append(m.adj[l.B], edge{to: l.A, weight: w, locked: l.Locked, door: l.Door})
		m.links = append(m.links, l)
	}
	return m, nil
}

// Place returns the ground truth for id.
func (m *Map) Place(id PlaceID) (Place, bool) {
	p, ok := m.places[id]
	return p, ok
}

// Places returns all place ids, sorted.
func (m *Map) Places() []PlaceID {
	out := make([]PlaceID, 0, len(m.places))
	for id := range m.places {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Links returns the link list as built.
func (m *Map) Links() []Link {
	out := make([]Link, len(m.links))
	copy(out, m.links)
	return out
}

// PlaceAtPath resolves a hierarchical path to its topological place.
func (m *Map) PlaceAtPath(p Path) (PlaceID, bool) {
	id, ok := m.byPath[p]
	return id, ok
}

// NearestPlace returns the place whose centroid is nearest to pt within the
// same frame.
func (m *Map) NearestPlace(pt Point) (PlaceID, error) {
	best := PlaceID("")
	bestD := math.Inf(1)
	for id, p := range m.places {
		d := pt.Distance(p.Centroid)
		if d < bestD || (d == bestD && id < best) {
			best, bestD = id, d
		}
	}
	if best == "" || math.IsInf(bestD, 1) {
		return "", fmt.Errorf("%w: no place in frame %q", ErrUnknownPlace, pt.Frame)
	}
	return best, nil
}

// Resolve fills in every representation of r that the map can derive,
// returning the enriched Ref. Resolution rules:
//
//	topological  → hierarchical, geometric (ground truth lookup)
//	hierarchical → topological (exact path), then as above
//	geometric    → topological (nearest centroid in frame), then as above
func (m *Map) Resolve(r Ref) (Ref, error) {
	place := r.Place
	if place == "" && r.Path != "" {
		if id, ok := m.byPath[r.Path]; ok {
			place = id
		}
	}
	if place == "" && r.Point != nil {
		id, err := m.NearestPlace(*r.Point)
		if err != nil {
			return r, fmt.Errorf("%w: %v", ErrUnresolvable, err)
		}
		place = id
	}
	if place == "" {
		return r, ErrUnresolvable
	}
	p, ok := m.places[place]
	if !ok {
		return r, fmt.Errorf("%w: %q", ErrUnknownPlace, place)
	}
	out := Ref{Place: place, Path: p.Path}
	if r.Point != nil {
		out.Point = r.Point // keep the precise observed point
	} else {
		c := p.Centroid
		out.Point = &c
	}
	return out, nil
}

// SamePlace reports whether two refs resolve to the same topological place.
func (m *Map) SamePlace(a, b Ref) (bool, error) {
	ra, err := m.Resolve(a)
	if err != nil {
		return false, err
	}
	rb, err := m.Resolve(b)
	if err != nil {
		return false, err
	}
	return ra.Place == rb.Place, nil
}

// Route is a computed path through the topological model.
type Route struct {
	// Places is the place sequence from source to destination inclusive.
	Places []PlaceID `json:"places"`
	// Doors lists the door names crossed, aligned with the hops.
	Doors []string `json:"doors"`
	// Length is the total cost in metres.
	Length float64 `json:"length"`
}

// Hops returns the number of edges traversed.
func (r Route) Hops() int {
	if len(r.Places) == 0 {
		return 0
	}
	return len(r.Places) - 1
}

// RouteOption tunes ShortestRoute.
type RouteOption func(*routeOpts)

type routeOpts struct {
	throughLocked bool
}

// ThroughLockedDoors permits traversing locked links (for planners that
// model keyholders).
func ThroughLockedDoors() RouteOption {
	return func(o *routeOpts) { o.throughLocked = true }
}

// ShortestRoute computes the minimum-cost route between two refs using
// Dijkstra over the place graph. Locked doors are impassable by default.
func (m *Map) ShortestRoute(from, to Ref, opts ...RouteOption) (Route, error) {
	var o routeOpts
	for _, opt := range opts {
		opt(&o)
	}
	rf, err := m.Resolve(from)
	if err != nil {
		return Route{}, fmt.Errorf("location: route source: %w", err)
	}
	rt, err := m.Resolve(to)
	if err != nil {
		return Route{}, fmt.Errorf("location: route destination: %w", err)
	}
	src, dst := rf.Place, rt.Place
	if src == dst {
		return Route{Places: []PlaceID{src}}, nil
	}

	dist := map[PlaceID]float64{src: 0}
	prev := map[PlaceID]PlaceID{}
	prevDoor := map[PlaceID]string{}
	visited := map[PlaceID]bool{}

	for {
		// Extract the unvisited place with minimal distance (linear scan:
		// building graphs are small; determinism matters more than O(log n)).
		cur := PlaceID("")
		curD := math.Inf(1)
		for id, d := range dist {
			if visited[id] {
				continue
			}
			if d < curD || (d == curD && (cur == "" || id < cur)) {
				cur, curD = id, d
			}
		}
		if cur == "" {
			return Route{}, fmt.Errorf("%w: %s → %s", ErrNoPath, src, dst)
		}
		if cur == dst {
			break
		}
		visited[cur] = true
		for _, e := range m.adj[cur] {
			if e.locked && !o.throughLocked {
				continue
			}
			nd := curD + e.weight
			if old, ok := dist[e.to]; !ok || nd < old {
				dist[e.to] = nd
				prev[e.to] = cur
				prevDoor[e.to] = e.door
			}
		}
	}

	// Reconstruct.
	var places []PlaceID
	var doors []string
	for at := dst; ; {
		places = append(places, at)
		if at == src {
			break
		}
		doors = append(doors, prevDoor[at])
		at = prev[at]
	}
	// Reverse.
	for i, j := 0, len(places)-1; i < j; i, j = i+1, j-1 {
		places[i], places[j] = places[j], places[i]
	}
	for i, j := 0, len(doors)-1; i < j; i, j = i+1, j-1 {
		doors[i], doors[j] = doors[j], doors[i]
	}
	return Route{Places: places, Doors: doors, Length: dist[dst]}, nil
}

// TravelDistance returns the route length between two refs, or +Inf when
// unreachable. It is the metric behind the CAPA "closest printer" Which
// clause.
func (m *Map) TravelDistance(from, to Ref) float64 {
	r, err := m.ShortestRoute(from, to)
	if err != nil {
		return math.Inf(1)
	}
	return r.Length
}
