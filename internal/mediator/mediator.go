// Package mediator implements the Event Mediator Context Utility (paper,
// Section 3.1): "manages the establishment, maintenance and removal of event
// subscriptions between Context Entities and Context Aware Applications."
//
// The Mediator wraps the lock-striped, index-dispatched event bus
// (internal/eventbus) with the bookkeeping the rest of a Range needs. Every
// live subscription is recorded three ways: in the primary table by
// subscription id, in an owner index (who subscribed), and in a
// configuration index (on behalf of which resolved configuration). The
// secondary indexes make the two bulk-teardown paths — an entity departing
// its Range (Section 3.4) and the configuration runtime tearing down or
// rewiring a subscription graph — O(subscriptions removed) instead of a
// scan of every record.
//
// The bookkeeping is striped across lock shards exactly like the bus
// underneath: the primary table shards by subscription id, the owner index
// by owner id and the configuration index by configuration id, so
// registration churn from unrelated entities never serialises on one mutex.
// The primary table is the source of truth; a secondary index may briefly
// list an id whose record is already gone, and every read through an index
// re-checks the primary table before trusting it.
//
// Shard-count tuning flows down from server.Config.EventShards via
// WithShards; dispatch observability (per-shard counters, index-hit ratio)
// flows back up through Stats, ShardStats and IndexHitRatio.
package mediator

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/eventbus"
	"sci/internal/guid"
)

// Record describes one live subscription.
type Record struct {
	// ID is the subscription identifier.
	ID guid.GUID
	// Owner is the subscribing entity (CE or CAA).
	Owner guid.GUID
	// Filter selects the events delivered.
	Filter event.Filter
	// Configuration groups subscriptions created on behalf of one resolved
	// configuration; nil for free-standing subscriptions.
	Configuration guid.GUID
	// OneShot marks one-time subscriptions.
	OneShot bool
}

// recShard is one stripe of the primary subscription table.
type recShard struct {
	mu   sync.Mutex
	recs map[guid.GUID]*liveSub
}

// indexShard is one stripe of a secondary index (owner or configuration →
// subscription ids).
type indexShard struct {
	mu   sync.Mutex
	sets map[guid.GUID]guid.Set
}

// Mediator manages a Range's event subscriptions. Construct with New.
type Mediator struct {
	bus *eventbus.Bus

	closed atomic.Bool
	mask   uint32
	recs   []*recShard
	owners []*indexShard
	cfgs   []*indexShard
}

type liveSub struct {
	rec Record
	sub *eventbus.Subscription
}

// ErrUnknownSubscription reports an id with no live subscription.
var ErrUnknownSubscription = errors.New("mediator: unknown subscription")

// Option configures a Mediator.
type Option func(*config)

type config struct {
	shards int
	quota  *eventbus.Quota
}

// WithShards sets the lock-stripe count for both the underlying bus and the
// Mediator's own record bookkeeping (0 = default).
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithQuota enables per-publisher admission control on the underlying bus.
func WithQuota(q eventbus.Quota) Option {
	return func(c *config) { c.quota = &q }
}

// maxShards mirrors the bus's clamp.
const maxShards = 1024

// New builds a Mediator over a fresh bus. reg may be nil (no semantic
// equivalence in filter matching).
func New(reg *ctxtype.Registry, opts ...Option) *Mediator {
	var c config
	for _, o := range opts {
		o(&c)
	}
	var busOpts []eventbus.Option
	if c.shards > 0 {
		busOpts = append(busOpts, eventbus.WithShards(c.shards))
	}
	if c.quota != nil {
		busOpts = append(busOpts, eventbus.WithQuota(*c.quota))
	}
	want := c.shards
	if want <= 0 {
		want = eventbus.DefaultShards
	}
	n := 1
	for n < want && n < maxShards {
		n <<= 1
	}
	m := &Mediator{
		bus:    eventbus.New(reg, busOpts...),
		mask:   uint32(n - 1),
		recs:   make([]*recShard, n),
		owners: make([]*indexShard, n),
		cfgs:   make([]*indexShard, n),
	}
	for i := 0; i < n; i++ {
		m.recs[i] = &recShard{recs: make(map[guid.GUID]*liveSub)}
		m.owners[i] = &indexShard{sets: make(map[guid.GUID]guid.Set)}
		m.cfgs[i] = &indexShard{sets: make(map[guid.GUID]guid.Set)}
	}
	return m
}

// stripe hashes a GUID to a shard index. Byte 0 is the kind tag (constant
// within a population of ids), so hash the random bytes, like the bus.
func (m *Mediator) stripe(id guid.GUID) uint32 {
	return binary.BigEndian.Uint32(id[1:5]) & m.mask
}

func (m *Mediator) recShard(id guid.GUID) *recShard { return m.recs[m.stripe(id)] }

func (m *Mediator) indexShard(shards []*indexShard, key guid.GUID) *indexShard {
	return shards[m.stripe(key)]
}

// addIndex records id under key in the given secondary index.
func (m *Mediator) addIndex(shards []*indexShard, key, id guid.GUID) {
	is := m.indexShard(shards, key)
	is.mu.Lock()
	set, ok := is.sets[key]
	if !ok {
		set = guid.NewSet()
		is.sets[key] = set
	}
	set.Add(id)
	is.mu.Unlock()
}

// dropIndex removes id from key's bucket, deleting the bucket when empty.
func (m *Mediator) dropIndex(shards []*indexShard, key, id guid.GUID) {
	is := m.indexShard(shards, key)
	is.mu.Lock()
	if set, ok := is.sets[key]; ok {
		set.Remove(id)
		if len(set) == 0 {
			delete(is.sets, key)
		}
	}
	is.mu.Unlock()
}

// SubOptions configures Subscribe.
type SubOptions struct {
	// Configuration groups this subscription under a configuration.
	Configuration guid.GUID
	// OneShot cancels the subscription after first delivery (the paper's
	// one-time subscription query mode).
	OneShot bool
	// QueueLen overrides the delivery queue capacity.
	QueueLen int
}

// Subscribe establishes a subscription for owner. The handler runs on a
// dedicated delivery goroutine.
func (m *Mediator) Subscribe(owner guid.GUID, f event.Filter, h func(event.Event), opts SubOptions) (Record, error) {
	if h == nil {
		return Record{}, errors.New("mediator: nil handler")
	}
	return m.subscribe(owner, f, func(events []event.Event) {
		for i := range events {
			h(events[i])
		}
	}, opts)
}

// SubscribeBatch establishes a subscription whose handler receives every
// event queued since its last wakeup as one slice, for consumers that can
// amortise per-event costs. The remote-delivery edges consume through it:
// configuration root delivery, the Range Service's remote proxies and the
// SCINET fabric's cross-range forwarding tap all take a burst as one slice,
// so their outbound coalescer lock is acquired once per run.
// The slice is reused between invocations and must not be retained.
func (m *Mediator) SubscribeBatch(owner guid.GUID, f event.Filter, h func([]event.Event), opts SubOptions) (Record, error) {
	if h == nil {
		return Record{}, errors.New("mediator: nil handler")
	}
	return m.subscribe(owner, f, h, opts)
}

func (m *Mediator) subscribe(owner guid.GUID, f event.Filter, h eventbus.BatchHandler, opts SubOptions) (Record, error) {
	if owner.IsNil() {
		return Record{}, errors.New("mediator: nil owner")
	}
	busOpts := []eventbus.SubOption{eventbus.WithOwner(owner)}
	if opts.OneShot {
		busOpts = append(busOpts, eventbus.OneShot())
	}
	if opts.QueueLen > 0 {
		busOpts = append(busOpts, eventbus.WithQueueLen(opts.QueueLen))
	}

	var rec Record
	// ready gates the one-shot cleanup on the record having been indexed:
	// the single delivery can fire before Subscribe returns, and removing
	// the record before it exists would leave a stale entry behind.
	ready := make(chan struct{})
	wrapped := h
	if opts.OneShot {
		wrapped = func(events []event.Event) {
			h(events)
			<-ready
			m.remove(rec.ID)
		}
	}
	sub, err := m.bus.SubscribeBatch(f, wrapped, busOpts...)
	if err != nil {
		return Record{}, fmt.Errorf("mediator: %w", err)
	}
	rec = Record{
		ID:            sub.ID(),
		Owner:         owner,
		Filter:        f,
		Configuration: opts.Configuration,
		OneShot:       opts.OneShot,
	}
	rs := m.recShard(rec.ID)
	rs.mu.Lock()
	// Re-checked under the stripe lock: Close sets the flag before sweeping
	// the stripes, so either we observe it here or Close observes us there.
	if m.closed.Load() {
		rs.mu.Unlock()
		close(ready)
		sub.Cancel()
		return Record{}, fmt.Errorf("mediator: %w", eventbus.ErrClosed)
	}
	rs.recs[rec.ID] = &liveSub{rec: rec, sub: sub}
	rs.mu.Unlock()
	m.addIndex(m.owners, owner, rec.ID)
	if !opts.Configuration.IsNil() {
		m.addIndex(m.cfgs, opts.Configuration, rec.ID)
	}
	close(ready)
	return rec, nil
}

// remove deletes id from the primary table (first remover wins) and then
// cleans both secondary indexes. It returns the removed entry, or nil when
// the id was unknown or already removed by a concurrent caller.
func (m *Mediator) remove(id guid.GUID) *liveSub {
	rs := m.recShard(id)
	rs.mu.Lock()
	ls, ok := rs.recs[id]
	if ok {
		delete(rs.recs, id)
	}
	rs.mu.Unlock()
	if !ok {
		return nil
	}
	m.dropIndex(m.owners, ls.rec.Owner, id)
	if !ls.rec.Configuration.IsNil() {
		m.dropIndex(m.cfgs, ls.rec.Configuration, id)
	}
	return ls
}

// Publish dispatches an event to all matching subscriptions.
func (m *Mediator) Publish(e event.Event) error {
	return m.bus.Publish(e)
}

// PublishAll dispatches a batch of events in one call; the bus resolves its
// subscription index once per run of same-type events and appends each
// subscriber's share of a run under a single ring-buffer lock acquisition.
func (m *Mediator) PublishAll(events []event.Event) error {
	return m.bus.PublishAll(events)
}

// PublishAllOwned is PublishAll with ownership transfer: the slice is
// retained and shared with subscriber rings, so the caller must not touch
// it again. Use from pipelines that already build a private slice per batch.
func (m *Mediator) PublishAllOwned(events []event.Event) error {
	return m.bus.PublishAllOwned(events)
}

// PublishAllOwnedFrom is PublishAllOwned with an explicit drop-attribution
// key: events of this batch later discarded from full subscription queues
// count against pub (see DropsFor) instead of their own Source — the wire
// and overlay ingest paths pass the sending endpoint so credit acks can
// name the link responsible.
func (m *Mediator) PublishAllOwnedFrom(pub guid.GUID, events []event.Event) error {
	return m.bus.PublishAllOwnedFrom(pub, events)
}

// Cancel removes one subscription.
func (m *Mediator) Cancel(id guid.GUID) error {
	ls := m.remove(id)
	if ls == nil {
		return fmt.Errorf("%w: %s", ErrUnknownSubscription, id.Short())
	}
	ls.sub.Cancel()
	return nil
}

// cancelIndexed empties key's bucket in the given index and cancels every
// subscription it named that was still live.
func (m *Mediator) cancelIndexed(shards []*indexShard, key guid.GUID) int {
	is := m.indexShard(shards, key)
	is.mu.Lock()
	bucket := is.sets[key]
	delete(is.sets, key)
	is.mu.Unlock()
	n := 0
	for id := range bucket {
		if ls := m.remove(id); ls != nil {
			ls.sub.Cancel()
			n++
		}
	}
	return n
}

// CancelOwned removes every subscription owned by entity (departure
// handling); returns the number cancelled. The owner index makes this
// proportional to the entity's own subscriptions, not the Range's total.
func (m *Mediator) CancelOwned(entity guid.GUID) int {
	return m.cancelIndexed(m.owners, entity)
}

// CancelConfiguration removes every subscription belonging to a
// configuration (teardown/rewire); returns the number cancelled. The
// configuration index makes this proportional to the configuration's size.
func (m *Mediator) CancelConfiguration(cfg guid.GUID) int {
	if cfg.IsNil() {
		return 0
	}
	return m.cancelIndexed(m.cfgs, cfg)
}

// Get returns the record for a live subscription.
func (m *Mediator) Get(id guid.GUID) (Record, bool) {
	rs := m.recShard(id)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	ls, ok := rs.recs[id]
	if !ok {
		return Record{}, false
	}
	return ls.rec, true
}

// Records returns all live subscription records, ordered by id.
func (m *Mediator) Records() []Record {
	var out []Record
	for _, rs := range m.recs {
		rs.mu.Lock()
		for _, ls := range rs.recs {
			out = append(out, ls.rec)
		}
		rs.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return guid.Less(out[i].ID, out[j].ID) })
	return out
}

// OwnedBy returns the live records owned by entity, ordered by id.
func (m *Mediator) OwnedBy(entity guid.GUID) []Record {
	return m.indexedRecords(m.owners, entity)
}

// ForConfiguration returns the live records in a configuration, ordered by
// id.
func (m *Mediator) ForConfiguration(cfg guid.GUID) []Record {
	return m.indexedRecords(m.cfgs, cfg)
}

func (m *Mediator) indexedRecords(shards []*indexShard, key guid.GUID) []Record {
	is := m.indexShard(shards, key)
	is.mu.Lock()
	ids := is.sets[key].Members()
	is.mu.Unlock()
	out := make([]Record, 0, len(ids))
	for _, id := range ids {
		// The primary table is the source of truth: skip ids whose record a
		// concurrent removal already claimed.
		if rec, ok := m.Get(id); ok {
			out = append(out, rec)
		}
	}
	return out
}

// Len returns the number of live subscriptions.
func (m *Mediator) Len() int {
	n := 0
	for _, rs := range m.recs {
		rs.mu.Lock()
		n += len(rs.recs)
		rs.mu.Unlock()
	}
	return n
}

// Stats exposes the underlying bus counters.
func (m *Mediator) Stats() eventbus.Stats {
	return m.bus.Stats()
}

// ShardStats exposes the bus's per-stripe dispatch counters.
func (m *Mediator) ShardStats() []eventbus.ShardStats {
	return m.bus.ShardStats()
}

// DropsFor exposes the bus's cumulative drop count attributed to one
// publisher/endpoint.
func (m *Mediator) DropsFor(pub guid.GUID) uint64 {
	return m.bus.DropsFor(pub)
}

// DropsBySource exposes the bus's per-publisher drop attribution snapshot.
func (m *Mediator) DropsBySource() map[guid.GUID]uint64 {
	return m.bus.DropsBySource()
}

// QuotaRejectedFor exposes the bus's per-publisher quota-refusal count: the
// number of events admission control refused charged against pub.
func (m *Mediator) QuotaRejectedFor(pub guid.GUID) uint64 {
	return m.bus.QuotaRejectedFor(pub)
}

// QuotaRejectedBySource exposes the bus's per-publisher quota-refusal
// snapshot (nil-GUID key: the overflow bucket).
func (m *Mediator) QuotaRejectedBySource() map[guid.GUID]uint64 {
	return m.bus.QuotaRejectedBySource()
}

// IndexHitRatio reports the fraction of dispatch work the bus resolved
// through its exact-pattern index (1 = no wildcard scanning).
func (m *Mediator) IndexHitRatio() float64 {
	return m.bus.IndexHitRatio()
}

// Close tears down the bus and all subscriptions.
func (m *Mediator) Close() {
	m.closed.Store(true)
	for _, rs := range m.recs {
		rs.mu.Lock()
		rs.recs = make(map[guid.GUID]*liveSub)
		rs.mu.Unlock()
	}
	for _, shards := range [][]*indexShard{m.owners, m.cfgs} {
		for _, is := range shards {
			is.mu.Lock()
			is.sets = make(map[guid.GUID]guid.Set)
			is.mu.Unlock()
		}
	}
	m.bus.Close()
}
