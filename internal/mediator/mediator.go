// Package mediator implements the Event Mediator Context Utility (paper,
// Section 3.1): "manages the establishment, maintenance and removal of event
// subscriptions between Context Entities and Context Aware Applications."
//
// The Mediator wraps the in-process event bus with the bookkeeping the rest
// of a Range needs: a record of every live subscription (who subscribed, to
// what, on whose behalf), configuration-scoped grouping so the configuration
// runtime can tear down or rewire whole subscription graphs at once, and
// departure handling (an entity leaving the Range takes its subscriptions
// with it, Section 3.4).
package mediator

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/eventbus"
	"sci/internal/guid"
)

// Record describes one live subscription.
type Record struct {
	// ID is the subscription identifier.
	ID guid.GUID
	// Owner is the subscribing entity (CE or CAA).
	Owner guid.GUID
	// Filter selects the events delivered.
	Filter event.Filter
	// Configuration groups subscriptions created on behalf of one resolved
	// configuration; nil for free-standing subscriptions.
	Configuration guid.GUID
	// OneShot marks one-time subscriptions.
	OneShot bool
}

// Mediator manages a Range's event subscriptions. Construct with New.
type Mediator struct {
	bus *eventbus.Bus

	mu   sync.Mutex
	recs map[guid.GUID]*liveSub
}

type liveSub struct {
	rec Record
	sub *eventbus.Subscription
}

// ErrUnknownSubscription reports an id with no live subscription.
var ErrUnknownSubscription = errors.New("mediator: unknown subscription")

// New builds a Mediator over a fresh bus. reg may be nil (no semantic
// equivalence in filter matching).
func New(reg *ctxtype.Registry) *Mediator {
	return &Mediator{
		bus:  eventbus.New(reg),
		recs: make(map[guid.GUID]*liveSub),
	}
}

// SubOptions configures Subscribe.
type SubOptions struct {
	// Configuration groups this subscription under a configuration.
	Configuration guid.GUID
	// OneShot cancels the subscription after first delivery (the paper's
	// one-time subscription query mode).
	OneShot bool
	// QueueLen overrides the delivery queue capacity.
	QueueLen int
}

// Subscribe establishes a subscription for owner. The handler runs on a
// dedicated delivery goroutine.
func (m *Mediator) Subscribe(owner guid.GUID, f event.Filter, h func(event.Event), opts SubOptions) (Record, error) {
	if owner.IsNil() {
		return Record{}, errors.New("mediator: nil owner")
	}
	busOpts := []eventbus.SubOption{eventbus.WithOwner(owner)}
	if opts.OneShot {
		busOpts = append(busOpts, eventbus.OneShot())
	}
	if opts.QueueLen > 0 {
		busOpts = append(busOpts, eventbus.WithQueueLen(opts.QueueLen))
	}

	var rec Record
	wrapped := h
	if opts.OneShot {
		// Drop the record as soon as the single delivery happens.
		wrapped = func(e event.Event) {
			h(e)
			m.mu.Lock()
			delete(m.recs, rec.ID)
			m.mu.Unlock()
		}
	}
	sub, err := m.bus.Subscribe(f, wrapped, busOpts...)
	if err != nil {
		return Record{}, fmt.Errorf("mediator: %w", err)
	}
	rec = Record{
		ID:            sub.ID(),
		Owner:         owner,
		Filter:        f,
		Configuration: opts.Configuration,
		OneShot:       opts.OneShot,
	}
	m.mu.Lock()
	m.recs[rec.ID] = &liveSub{rec: rec, sub: sub}
	m.mu.Unlock()
	return rec, nil
}

// Publish dispatches an event to all matching subscriptions.
func (m *Mediator) Publish(e event.Event) error {
	return m.bus.Publish(e)
}

// Cancel removes one subscription.
func (m *Mediator) Cancel(id guid.GUID) error {
	m.mu.Lock()
	ls, ok := m.recs[id]
	if ok {
		delete(m.recs, id)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSubscription, id.Short())
	}
	ls.sub.Cancel()
	return nil
}

// CancelOwned removes every subscription owned by entity (departure
// handling); returns the number cancelled.
func (m *Mediator) CancelOwned(entity guid.GUID) int {
	victims := m.takeMatching(func(r Record) bool { return r.Owner == entity })
	for _, ls := range victims {
		ls.sub.Cancel()
	}
	return len(victims)
}

// CancelConfiguration removes every subscription belonging to a
// configuration (teardown/rewire); returns the number cancelled.
func (m *Mediator) CancelConfiguration(cfg guid.GUID) int {
	if cfg.IsNil() {
		return 0
	}
	victims := m.takeMatching(func(r Record) bool { return r.Configuration == cfg })
	for _, ls := range victims {
		ls.sub.Cancel()
	}
	return len(victims)
}

func (m *Mediator) takeMatching(pred func(Record) bool) []*liveSub {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*liveSub
	for id, ls := range m.recs {
		if pred(ls.rec) {
			out = append(out, ls)
			delete(m.recs, id)
		}
	}
	return out
}

// Get returns the record for a live subscription.
func (m *Mediator) Get(id guid.GUID) (Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls, ok := m.recs[id]
	if !ok {
		return Record{}, false
	}
	return ls.rec, true
}

// Records returns all live subscription records, ordered by id.
func (m *Mediator) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, 0, len(m.recs))
	for _, ls := range m.recs {
		out = append(out, ls.rec)
	}
	sort.Slice(out, func(i, j int) bool { return guid.Less(out[i].ID, out[j].ID) })
	return out
}

// OwnedBy returns the live records owned by entity, ordered by id.
func (m *Mediator) OwnedBy(entity guid.GUID) []Record {
	var out []Record
	for _, r := range m.Records() {
		if r.Owner == entity {
			out = append(out, r)
		}
	}
	return out
}

// ForConfiguration returns the live records in a configuration, ordered by
// id.
func (m *Mediator) ForConfiguration(cfg guid.GUID) []Record {
	var out []Record
	for _, r := range m.Records() {
		if r.Configuration == cfg {
			out = append(out, r)
		}
	}
	return out
}

// Len returns the number of live subscriptions.
func (m *Mediator) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

// Stats exposes the underlying bus counters.
func (m *Mediator) Stats() eventbus.Stats {
	return m.bus.Stats()
}

// Close tears down the bus and all subscriptions.
func (m *Mediator) Close() {
	m.mu.Lock()
	m.recs = make(map[guid.GUID]*liveSub)
	m.mu.Unlock()
	m.bus.Close()
}
