// Package mediator implements the Event Mediator Context Utility (paper,
// Section 3.1): "manages the establishment, maintenance and removal of event
// subscriptions between Context Entities and Context Aware Applications."
//
// The Mediator wraps the lock-striped, index-dispatched event bus
// (internal/eventbus) with the bookkeeping the rest of a Range needs. Every
// live subscription is recorded three ways: in the primary table by
// subscription id, in an owner index (who subscribed), and in a
// configuration index (on behalf of which resolved configuration). The
// secondary indexes make the two bulk-teardown paths — an entity departing
// its Range (Section 3.4) and the configuration runtime tearing down or
// rewiring a subscription graph — O(subscriptions removed) instead of a
// scan of every record, mirroring the sharded dispatch discipline of the
// bus underneath.
//
// Shard-count tuning flows down from server.Config.EventShards via
// WithShards; dispatch observability (per-shard counters, index-hit ratio)
// flows back up through Stats, ShardStats and IndexHitRatio.
package mediator

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/eventbus"
	"sci/internal/guid"
)

// Record describes one live subscription.
type Record struct {
	// ID is the subscription identifier.
	ID guid.GUID
	// Owner is the subscribing entity (CE or CAA).
	Owner guid.GUID
	// Filter selects the events delivered.
	Filter event.Filter
	// Configuration groups subscriptions created on behalf of one resolved
	// configuration; nil for free-standing subscriptions.
	Configuration guid.GUID
	// OneShot marks one-time subscriptions.
	OneShot bool
}

// Mediator manages a Range's event subscriptions. Construct with New.
type Mediator struct {
	bus *eventbus.Bus

	mu      sync.Mutex
	recs    map[guid.GUID]*liveSub
	byOwner map[guid.GUID]guid.Set // owner → subscription ids
	byCfg   map[guid.GUID]guid.Set // configuration → subscription ids
	closed  bool
}

type liveSub struct {
	rec Record
	sub *eventbus.Subscription
}

// ErrUnknownSubscription reports an id with no live subscription.
var ErrUnknownSubscription = errors.New("mediator: unknown subscription")

// Option configures a Mediator.
type Option func(*config)

type config struct {
	shards int
}

// WithShards sets the underlying bus's lock-stripe count (0 = default).
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// New builds a Mediator over a fresh bus. reg may be nil (no semantic
// equivalence in filter matching).
func New(reg *ctxtype.Registry, opts ...Option) *Mediator {
	var c config
	for _, o := range opts {
		o(&c)
	}
	var busOpts []eventbus.Option
	if c.shards > 0 {
		busOpts = append(busOpts, eventbus.WithShards(c.shards))
	}
	return &Mediator{
		bus:     eventbus.New(reg, busOpts...),
		recs:    make(map[guid.GUID]*liveSub),
		byOwner: make(map[guid.GUID]guid.Set),
		byCfg:   make(map[guid.GUID]guid.Set),
	}
}

// SubOptions configures Subscribe.
type SubOptions struct {
	// Configuration groups this subscription under a configuration.
	Configuration guid.GUID
	// OneShot cancels the subscription after first delivery (the paper's
	// one-time subscription query mode).
	OneShot bool
	// QueueLen overrides the delivery queue capacity.
	QueueLen int
}

// Subscribe establishes a subscription for owner. The handler runs on a
// dedicated delivery goroutine.
func (m *Mediator) Subscribe(owner guid.GUID, f event.Filter, h func(event.Event), opts SubOptions) (Record, error) {
	if owner.IsNil() {
		return Record{}, errors.New("mediator: nil owner")
	}
	busOpts := []eventbus.SubOption{eventbus.WithOwner(owner)}
	if opts.OneShot {
		busOpts = append(busOpts, eventbus.OneShot())
	}
	if opts.QueueLen > 0 {
		busOpts = append(busOpts, eventbus.WithQueueLen(opts.QueueLen))
	}

	var rec Record
	// ready gates the one-shot cleanup on the record having been indexed:
	// the single delivery can fire before Subscribe returns, and removing
	// the record before it exists would leave a stale entry behind.
	ready := make(chan struct{})
	wrapped := h
	if opts.OneShot {
		wrapped = func(e event.Event) {
			h(e)
			<-ready
			m.mu.Lock()
			m.removeLocked(rec.ID)
			m.mu.Unlock()
		}
	}
	sub, err := m.bus.Subscribe(f, wrapped, busOpts...)
	if err != nil {
		return Record{}, fmt.Errorf("mediator: %w", err)
	}
	rec = Record{
		ID:            sub.ID(),
		Owner:         owner,
		Filter:        f,
		Configuration: opts.Configuration,
		OneShot:       opts.OneShot,
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		close(ready)
		sub.Cancel()
		return Record{}, fmt.Errorf("mediator: %w", eventbus.ErrClosed)
	}
	m.indexLocked(&liveSub{rec: rec, sub: sub})
	m.mu.Unlock()
	close(ready)
	return rec, nil
}

// indexLocked inserts ls into the primary table and both secondary indexes.
func (m *Mediator) indexLocked(ls *liveSub) {
	m.recs[ls.rec.ID] = ls
	owned, ok := m.byOwner[ls.rec.Owner]
	if !ok {
		owned = guid.NewSet()
		m.byOwner[ls.rec.Owner] = owned
	}
	owned.Add(ls.rec.ID)
	if !ls.rec.Configuration.IsNil() {
		grouped, ok := m.byCfg[ls.rec.Configuration]
		if !ok {
			grouped = guid.NewSet()
			m.byCfg[ls.rec.Configuration] = grouped
		}
		grouped.Add(ls.rec.ID)
	}
}

// removeLocked deletes id from the primary table and both indexes,
// returning the removed entry (nil if unknown).
func (m *Mediator) removeLocked(id guid.GUID) *liveSub {
	ls, ok := m.recs[id]
	if !ok {
		return nil
	}
	delete(m.recs, id)
	if owned, ok := m.byOwner[ls.rec.Owner]; ok {
		owned.Remove(id)
		if len(owned) == 0 {
			delete(m.byOwner, ls.rec.Owner)
		}
	}
	if !ls.rec.Configuration.IsNil() {
		if grouped, ok := m.byCfg[ls.rec.Configuration]; ok {
			grouped.Remove(id)
			if len(grouped) == 0 {
				delete(m.byCfg, ls.rec.Configuration)
			}
		}
	}
	return ls
}

// takeIndexed removes and returns every subscription listed in the given
// index set (a byOwner or byCfg bucket). It acquires m.mu itself.
func (m *Mediator) takeIndexed(index map[guid.GUID]guid.Set, key guid.GUID) []*liveSub {
	m.mu.Lock()
	defer m.mu.Unlock()
	bucket, ok := index[key]
	if !ok {
		return nil
	}
	out := make([]*liveSub, 0, len(bucket))
	for _, id := range bucket.Members() {
		if ls := m.removeLocked(id); ls != nil {
			out = append(out, ls)
		}
	}
	return out
}

// Publish dispatches an event to all matching subscriptions.
func (m *Mediator) Publish(e event.Event) error {
	return m.bus.Publish(e)
}

// Cancel removes one subscription.
func (m *Mediator) Cancel(id guid.GUID) error {
	m.mu.Lock()
	ls := m.removeLocked(id)
	m.mu.Unlock()
	if ls == nil {
		return fmt.Errorf("%w: %s", ErrUnknownSubscription, id.Short())
	}
	ls.sub.Cancel()
	return nil
}

// CancelOwned removes every subscription owned by entity (departure
// handling); returns the number cancelled. The owner index makes this
// proportional to the entity's own subscriptions, not the Range's total.
func (m *Mediator) CancelOwned(entity guid.GUID) int {
	victims := m.takeIndexed(m.byOwner, entity)
	for _, ls := range victims {
		ls.sub.Cancel()
	}
	return len(victims)
}

// CancelConfiguration removes every subscription belonging to a
// configuration (teardown/rewire); returns the number cancelled. The
// configuration index makes this proportional to the configuration's size.
func (m *Mediator) CancelConfiguration(cfg guid.GUID) int {
	if cfg.IsNil() {
		return 0
	}
	victims := m.takeIndexed(m.byCfg, cfg)
	for _, ls := range victims {
		ls.sub.Cancel()
	}
	return len(victims)
}

// Get returns the record for a live subscription.
func (m *Mediator) Get(id guid.GUID) (Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls, ok := m.recs[id]
	if !ok {
		return Record{}, false
	}
	return ls.rec, true
}

// Records returns all live subscription records, ordered by id.
func (m *Mediator) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, 0, len(m.recs))
	for _, ls := range m.recs {
		out = append(out, ls.rec)
	}
	sort.Slice(out, func(i, j int) bool { return guid.Less(out[i].ID, out[j].ID) })
	return out
}

// OwnedBy returns the live records owned by entity, ordered by id.
func (m *Mediator) OwnedBy(entity guid.GUID) []Record {
	return m.indexedRecords(m.byOwner, entity)
}

// ForConfiguration returns the live records in a configuration, ordered by
// id.
func (m *Mediator) ForConfiguration(cfg guid.GUID) []Record {
	return m.indexedRecords(m.byCfg, cfg)
}

func (m *Mediator) indexedRecords(index map[guid.GUID]guid.Set, key guid.GUID) []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	bucket, ok := index[key]
	if !ok {
		return nil
	}
	out := make([]Record, 0, len(bucket))
	for _, id := range bucket.Members() {
		if ls, ok := m.recs[id]; ok {
			out = append(out, ls.rec)
		}
	}
	return out
}

// Len returns the number of live subscriptions.
func (m *Mediator) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

// Stats exposes the underlying bus counters.
func (m *Mediator) Stats() eventbus.Stats {
	return m.bus.Stats()
}

// ShardStats exposes the bus's per-stripe dispatch counters.
func (m *Mediator) ShardStats() []eventbus.ShardStats {
	return m.bus.ShardStats()
}

// IndexHitRatio reports the fraction of dispatch work the bus resolved
// through its exact-pattern index (1 = no wildcard scanning).
func (m *Mediator) IndexHitRatio() float64 {
	return m.bus.IndexHitRatio()
}

// Close tears down the bus and all subscriptions.
func (m *Mediator) Close() {
	m.mu.Lock()
	m.closed = true
	m.recs = make(map[guid.GUID]*liveSub)
	m.byOwner = make(map[guid.GUID]guid.Set)
	m.byCfg = make(map[guid.GUID]guid.Set)
	m.mu.Unlock()
	m.bus.Close()
}
