package mediator

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
)

var t0 = time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)

func mkEvent(ty ctxtype.Type, seq uint64) event.Event {
	return event.New(ty, guid.New(guid.KindDevice), seq, t0, nil)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestSubscribePublishCancel(t *testing.T) {
	m := New(nil)
	defer m.Close()
	owner := guid.New(guid.KindApplication)
	var got atomic.Int64
	rec, err := m.Subscribe(owner, event.Filter{Type: ctxtype.PrinterStatus},
		func(event.Event) { got.Add(1) }, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Owner != owner || rec.ID.IsNil() {
		t.Fatalf("record = %+v", rec)
	}
	if err := m.Publish(mkEvent(ctxtype.PrinterStatus, 1)); err != nil {
		t.Fatal(err)
	}
	_ = m.Publish(mkEvent(ctxtype.PathRoute, 2)) // filtered out
	waitFor(t, func() bool { return got.Load() == 1 })

	if err := m.Cancel(rec.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(rec.ID); !errors.Is(err, ErrUnknownSubscription) {
		t.Fatalf("double cancel: %v", err)
	}
	_ = m.Publish(mkEvent(ctxtype.PrinterStatus, 3))
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 1 {
		t.Fatal("delivered after cancel")
	}
}

func TestSubscribeValidation(t *testing.T) {
	m := New(nil)
	defer m.Close()
	if _, err := m.Subscribe(guid.Nil, event.Filter{}, func(event.Event) {}, SubOptions{}); err == nil {
		t.Fatal("nil owner accepted")
	}
	if _, err := m.Subscribe(guid.New(guid.KindEntity), event.Filter{}, nil, SubOptions{}); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestOneShotRemovesRecord(t *testing.T) {
	m := New(nil)
	defer m.Close()
	var got atomic.Int64
	rec, err := m.Subscribe(guid.New(guid.KindApplication), event.Filter{},
		func(event.Event) { got.Add(1) }, SubOptions{OneShot: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.OneShot {
		t.Fatal("record not marked one-shot")
	}
	for i := 0; i < 3; i++ {
		_ = m.Publish(mkEvent(ctxtype.PrinterStatus, uint64(i)))
	}
	waitFor(t, func() bool { return got.Load() == 1 })
	waitFor(t, func() bool { return m.Len() == 0 })
	if _, ok := m.Get(rec.ID); ok {
		t.Fatal("one-shot record still present")
	}
}

func TestCancelOwned(t *testing.T) {
	m := New(nil)
	defer m.Close()
	bob := guid.New(guid.KindPerson)
	john := guid.New(guid.KindPerson)
	for i := 0; i < 3; i++ {
		if _, err := m.Subscribe(bob, event.Filter{}, func(event.Event) {}, SubOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Subscribe(john, event.Filter{}, func(event.Event) {}, SubOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(m.OwnedBy(bob)) != 3 {
		t.Fatal("OwnedBy(bob) != 3")
	}
	if n := m.CancelOwned(bob); n != 3 {
		t.Fatalf("CancelOwned = %d", n)
	}
	if m.Len() != 1 || len(m.OwnedBy(bob)) != 0 || len(m.OwnedBy(john)) != 1 {
		t.Fatal("ownership bookkeeping broken")
	}
}

func TestCancelConfiguration(t *testing.T) {
	m := New(nil)
	defer m.Close()
	cfgX := guid.New(guid.KindConfiguration)
	cfgY := guid.New(guid.KindConfiguration)
	owner := guid.New(guid.KindApplication)
	for i := 0; i < 2; i++ {
		if _, err := m.Subscribe(owner, event.Filter{}, func(event.Event) {}, SubOptions{Configuration: cfgX}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Subscribe(owner, event.Filter{}, func(event.Event) {}, SubOptions{Configuration: cfgY}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Subscribe(owner, event.Filter{}, func(event.Event) {}, SubOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := len(m.ForConfiguration(cfgX)); got != 2 {
		t.Fatalf("ForConfiguration = %d", got)
	}
	if n := m.CancelConfiguration(cfgX); n != 2 {
		t.Fatalf("CancelConfiguration = %d", n)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d after teardown", m.Len())
	}
	if n := m.CancelConfiguration(guid.Nil); n != 0 {
		t.Fatal("nil configuration cancelled something")
	}
}

func TestSemanticEquivalenceThroughMediator(t *testing.T) {
	m := New(ctxtype.NewRegistry())
	defer m.Close()
	var got atomic.Int64
	if _, err := m.Subscribe(guid.New(guid.KindApplication),
		event.Filter{Type: ctxtype.LocationSightingDoor},
		func(event.Event) { got.Add(1) }, SubOptions{}); err != nil {
		t.Fatal(err)
	}
	_ = m.Publish(mkEvent(ctxtype.LocationSightingWLAN, 1))
	waitFor(t, func() bool { return got.Load() == 1 })
}

func TestRecordsSortedAndGet(t *testing.T) {
	m := New(nil)
	defer m.Close()
	owner := guid.New(guid.KindApplication)
	var ids []guid.GUID
	for i := 0; i < 10; i++ {
		rec, err := m.Subscribe(owner, event.Filter{}, func(event.Event) {}, SubOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	recs := m.Records()
	if len(recs) != 10 {
		t.Fatalf("Records len = %d", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if !guid.Less(recs[i-1].ID, recs[i].ID) {
			t.Fatal("Records not sorted")
		}
	}
	if _, ok := m.Get(ids[0]); !ok {
		t.Fatal("Get missed live record")
	}
	if _, ok := m.Get(guid.New(guid.KindSubscription)); ok {
		t.Fatal("Get found phantom record")
	}
}

func TestStatsAndConcurrency(t *testing.T) {
	m := New(nil)
	defer m.Close()
	var delivered atomic.Int64
	const subs = 4
	for i := 0; i < subs; i++ {
		if _, err := m.Subscribe(guid.New(guid.KindApplication), event.Filter{},
			func(event.Event) { delivered.Add(1) }, SubOptions{QueueLen: 4096}); err != nil {
			t.Fatal(err)
		}
	}
	const pubs, per = 4, 100
	var wg sync.WaitGroup
	for p := 0; p < pubs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := m.Publish(mkEvent(ctxtype.TemperatureCelsius, uint64(i))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	waitFor(t, func() bool { return delivered.Load() == subs*pubs*per })
	st := m.Stats()
	if st.Published != pubs*per || st.Subs != subs {
		t.Fatalf("stats = %+v", st)
	}
}
