package mediator

// Race-hardened lifecycle tests for the indexed Mediator: concurrent
// configuration teardown vs. publish, departure handling under load, and
// one-shot record cleanup racing its own delivery. Run with -race.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
)

// TestConcurrentTeardownVsPublish rebuilds and tears down configuration
// subscription graphs while publishers hammer the bus. Every subscription
// must be gone at the end and the indexes must agree with the bus.
func TestConcurrentTeardownVsPublish(t *testing.T) {
	m := New(ctxtype.NewRegistry(), WithShards(4))
	defer m.Close()
	owner := guid.New(guid.KindApplication)
	cfgs := make([]guid.GUID, 4)
	for i := range cfgs {
		cfgs[i] = guid.New(guid.KindConfiguration)
	}

	stop := make(chan struct{})
	var delivered atomic.Uint64
	var pubWG, rewireWG sync.WaitGroup

	// Publishers: a mix of indexed and wildcard-matched traffic.
	for p := 0; p < 3; p++ {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			src := guid.New(guid.KindDevice)
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				e := event.New(ctxtype.TemperatureCelsius, src, i, time.Now(), nil)
				if err := m.Publish(e); err != nil {
					t.Errorf("Publish: %v", err)
					return
				}
			}
		}()
	}

	// Rewirers: each cycles one configuration — subscribe a small graph,
	// tear it down, repeat — exactly what the configuration runtime does
	// on repair.
	for _, cfg := range cfgs {
		rewireWG.Add(1)
		go func(cfg guid.GUID) {
			defer rewireWG.Done()
			for round := 0; round < 100; round++ {
				for j := 0; j < 3; j++ {
					f := event.Filter{Type: ctxtype.TemperatureCelsius}
					if j == 2 {
						f = event.Filter{} // one wildcard edge per graph
					}
					if _, err := m.Subscribe(owner, f, func(event.Event) {
						delivered.Add(1)
					}, SubOptions{Configuration: cfg, QueueLen: 4}); err != nil {
						t.Errorf("Subscribe: %v", err)
						return
					}
				}
				if n := m.CancelConfiguration(cfg); n != 3 {
					t.Errorf("CancelConfiguration = %d, want 3", n)
					return
				}
			}
		}(cfg)
	}

	// Wait for the rewirers (they do bounded work), then stop publishers.
	done := make(chan struct{})
	go func() {
		rewireWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("teardown churn deadlocked")
	}
	close(stop)
	pubWG.Wait()

	if n := m.Len(); n != 0 {
		t.Fatalf("%d records survived teardown churn", n)
	}
	waitFor(t, func() bool { return m.Stats().Subs == 0 })
	for _, cfg := range cfgs {
		if rs := m.ForConfiguration(cfg); len(rs) != 0 {
			t.Fatalf("configuration %s still has %d records", cfg.Short(), len(rs))
		}
	}
	if rs := m.OwnedBy(owner); len(rs) != 0 {
		t.Fatalf("owner still has %d records", len(rs))
	}
}

// TestConcurrentDepartureVsPublish races CancelOwned (entity departure)
// against publishes and fresh subscriptions from the same owner.
func TestConcurrentDepartureVsPublish(t *testing.T) {
	m := New(nil, WithShards(2))
	defer m.Close()
	owners := []guid.GUID{guid.New(guid.KindPerson), guid.New(guid.KindPerson)}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := owners[w%len(owners)]
			src := guid.New(guid.KindDevice)
			for i := 0; i < 200; i++ {
				if _, err := m.Subscribe(owner, event.Filter{Type: ctxtype.PrinterStatus},
					func(event.Event) {}, SubOptions{QueueLen: 2}); err != nil {
					t.Errorf("Subscribe: %v", err)
					return
				}
				if err := m.Publish(event.New(ctxtype.PrinterStatus, src, uint64(i), time.Now(), nil)); err != nil {
					t.Errorf("Publish: %v", err)
					return
				}
				if i%5 == 0 {
					m.CancelOwned(owner)
				}
			}
			m.CancelOwned(owner)
		}(w)
	}
	wg.Wait()
	if n := m.Len(); n != 0 {
		t.Fatalf("%d records survived departure churn", n)
	}
	waitFor(t, func() bool { return m.Stats().Subs == 0 })
}

// TestOneShotDeliveryRace publishes the matching event from another
// goroutine the instant Subscribe is issued: the one-shot record must be
// removed exactly once even when delivery beats Subscribe's return.
func TestOneShotDeliveryRace(t *testing.T) {
	m := New(nil)
	defer m.Close()
	owner := guid.New(guid.KindApplication)
	src := guid.New(guid.KindDevice)

	for i := 0; i < 100; i++ {
		fired := make(chan struct{})
		stop := make(chan struct{})
		var pubs sync.WaitGroup
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = m.Publish(event.New(ctxtype.PathRoute, src, 1, time.Now(), nil))
				}
			}
		}()
		rec, err := m.Subscribe(owner, event.Filter{Type: ctxtype.PathRoute},
			func(event.Event) { close(fired) }, SubOptions{OneShot: true})
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-fired:
		case <-time.After(5 * time.Second):
			t.Fatal("one-shot never fired")
		}
		close(stop)
		pubs.Wait()
		waitFor(t, func() bool {
			_, live := m.Get(rec.ID)
			return !live
		})
	}
	if n := m.Len(); n != 0 {
		t.Fatalf("%d one-shot records leaked", n)
	}
}

// TestSubscribeCloseRace ensures a Subscribe racing Close either succeeds
// (and is torn down by Close) or reports the closed bus — never a leaked
// live record on a closed mediator.
func TestSubscribeCloseRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		m := New(nil)
		owner := guid.New(guid.KindApplication)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := m.Subscribe(owner, event.Filter{}, func(event.Event) {},
					SubOptions{}); err != nil {
					return // closed underneath us: acceptable
				}
			}
		}()
		m.Close()
		wg.Wait()
		if n := m.Len(); n != 0 {
			t.Fatalf("iteration %d: %d records on closed mediator", i, n)
		}
		if s := m.Stats(); s.Subs != 0 {
			t.Fatalf("iteration %d: %d live bus subs on closed mediator", i, s.Subs)
		}
	}
}
