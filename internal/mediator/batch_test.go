package mediator

import (
	"sync"
	"sync/atomic"
	"testing"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
)

func TestPublishAllThroughMediator(t *testing.T) {
	m := New(nil)
	defer m.Close()
	owner := guid.New(guid.KindApplication)
	var got atomic.Int64
	if _, err := m.Subscribe(owner, event.Filter{Type: ctxtype.PrinterStatus},
		func(event.Event) { got.Add(1) }, SubOptions{}); err != nil {
		t.Fatal(err)
	}
	batch := []event.Event{
		mkEvent(ctxtype.PrinterStatus, 1),
		mkEvent(ctxtype.PathRoute, 2), // filtered out
		mkEvent(ctxtype.PrinterStatus, 3),
	}
	if err := m.PublishAll(batch); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 2 })
}

func TestSubscribeBatchReceivesSlices(t *testing.T) {
	m := New(nil)
	defer m.Close()
	owner := guid.New(guid.KindApplication)
	var mu sync.Mutex
	var total, calls int
	if _, err := m.SubscribeBatch(owner, event.Filter{Type: ctxtype.PrinterStatus},
		func(events []event.Event) {
			mu.Lock()
			total += len(events)
			calls++
			mu.Unlock()
		}, SubOptions{}); err != nil {
		t.Fatal(err)
	}
	batch := make([]event.Event, 8)
	for i := range batch {
		batch[i] = mkEvent(ctxtype.PrinterStatus, uint64(i))
	}
	if err := m.PublishAll(batch); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return total == 8
	})
	mu.Lock()
	defer mu.Unlock()
	if calls > 8 {
		t.Fatalf("batch handler invoked %d times for 8 events", calls)
	}
}

// TestStripedBookkeepingAcrossOwners exercises the sharded record tables:
// many owners and configurations register, publish and tear down
// concurrently; run with -race to check stripe independence.
func TestStripedBookkeepingAcrossOwners(t *testing.T) {
	m := New(nil, WithShards(8))
	defer m.Close()
	const owners = 16
	var wg sync.WaitGroup
	for o := 0; o < owners; o++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			owner := guid.New(guid.KindApplication)
			cfg := guid.New(guid.KindConfiguration)
			for r := 0; r < 50; r++ {
				rec, err := m.Subscribe(owner, event.Filter{Type: ctxtype.PrinterStatus},
					func(event.Event) {}, SubOptions{Configuration: cfg})
				if err != nil {
					t.Error(err)
					return
				}
				if len(m.OwnedBy(owner)) == 0 {
					t.Error("owner index missing fresh subscription")
					return
				}
				switch r % 3 {
				case 0:
					if err := m.Cancel(rec.ID); err != nil {
						t.Error(err)
						return
					}
				case 1:
					m.CancelOwned(owner)
				case 2:
					m.CancelConfiguration(cfg)
				}
			}
			m.CancelOwned(owner)
			if n := len(m.OwnedBy(owner)); n != 0 {
				t.Errorf("owner still holds %d records after teardown", n)
			}
		}()
	}
	wg.Wait()
	if m.Len() != 0 {
		t.Fatalf("%d records left after full teardown", m.Len())
	}
	if got := len(m.Records()); got != 0 {
		t.Fatalf("Records() returned %d after teardown", got)
	}
}
