package event

import (
	"testing"
	"testing/quick"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/guid"
)

var t0 = time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)

func TestNewAndValidate(t *testing.T) {
	src := guid.New(guid.KindEntity)
	e := New(ctxtype.TemperatureCelsius, src, 7, t0, map[string]any{"value": 21.5})
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.ID.Kind() != guid.KindEvent {
		t.Fatalf("event id kind = %v", e.ID.Kind())
	}
	if e.Seq != 7 || !e.Time.Equal(t0) {
		t.Fatal("fields not set")
	}
}

func TestValidateRejections(t *testing.T) {
	src := guid.New(guid.KindEntity)
	good := New(ctxtype.TemperatureCelsius, src, 1, t0, nil)

	e := good
	e.ID = guid.Nil
	if e.Validate() == nil {
		t.Error("nil ID accepted")
	}
	e = good
	e.Type = "BAD TYPE"
	if e.Validate() == nil {
		t.Error("bad type accepted")
	}
	e = good
	e.Type = ctxtype.Wildcard
	if e.Validate() == nil {
		t.Error("wildcard type accepted")
	}
	e = good
	e.Source = guid.Nil
	if e.Validate() == nil {
		t.Error("nil source accepted")
	}
}

func TestWithHelpers(t *testing.T) {
	src := guid.New(guid.KindEntity)
	subj := guid.New(guid.KindPerson)
	rng := guid.New(guid.KindRange)
	e := New(ctxtype.LocationSightingDoor, src, 1, t0, nil).
		WithSubject(subj).WithRange(rng).WithQuality(0.9)
	if e.Subject != subj || e.Range != rng || e.Quality != 0.9 {
		t.Fatal("With helpers did not set fields")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	src := guid.New(guid.KindDevice)
	subj := guid.New(guid.KindPerson)
	e := New(ctxtype.LocationSightingDoor, src, 42, t0, map[string]any{
		"door": "L10.01", "badge": subj.String(),
	}).WithSubject(subj).WithQuality(0.9)
	data, err := e.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != e.ID || back.Type != e.Type || back.Source != e.Source ||
		back.Subject != e.Subject || back.Seq != e.Seq || !back.Time.Equal(e.Time) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, e)
	}
	if d, ok := back.Str("door"); !ok || d != "L10.01" {
		t.Fatal("payload string lost")
	}
	if g, ok := back.GUIDField("badge"); !ok || g != subj {
		t.Fatal("payload GUID lost")
	}
}

func TestDecodeRejects(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := Decode([]byte(`{"type":"x"}`)); err == nil {
		t.Fatal("invalid event accepted")
	}
}

func TestFloatAccessor(t *testing.T) {
	src := guid.New(guid.KindDevice)
	e := New(ctxtype.TemperatureCelsius, src, 1, t0, map[string]any{
		"f": 1.5, "i": 3, "i64": int64(4), "s": "x",
	})
	if v, ok := e.Float("f"); !ok || v != 1.5 {
		t.Error("float64 field")
	}
	if v, ok := e.Float("i"); !ok || v != 3 {
		t.Error("int field")
	}
	if v, ok := e.Float("i64"); !ok || v != 4 {
		t.Error("int64 field")
	}
	if _, ok := e.Float("s"); ok {
		t.Error("string extracted as float")
	}
	if _, ok := e.Float("missing"); ok {
		t.Error("missing key extracted")
	}
	// After a JSON round trip ints become float64; accessor must still work.
	data, _ := e.Encode()
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := back.Float("i"); !ok || v != 3 {
		t.Error("int field after round trip")
	}
}

func TestFilterMatches(t *testing.T) {
	src := guid.New(guid.KindDevice)
	subj := guid.New(guid.KindPerson)
	rng := guid.New(guid.KindRange)
	e := New(ctxtype.LocationSightingDoor, src, 1, t0, nil).
		WithSubject(subj).WithRange(rng).WithQuality(0.9)

	cases := []struct {
		name string
		f    Filter
		want bool
	}{
		{"empty matches all", Filter{}, true},
		{"exact type", Filter{Type: ctxtype.LocationSightingDoor}, true},
		{"ancestor type", Filter{Type: ctxtype.LocationSighting}, true},
		{"wildcard", Filter{Type: ctxtype.Wildcard}, true},
		{"other type", Filter{Type: ctxtype.PrinterStatus}, false},
		{"source match", Filter{Source: src}, true},
		{"source mismatch", Filter{Source: subj}, false},
		{"subject match", Filter{Subject: subj}, true},
		{"subject mismatch", Filter{Subject: src}, false},
		{"range match", Filter{Range: rng}, true},
		{"range mismatch", Filter{Range: guid.New(guid.KindRange)}, false},
		{"quality pass", Filter{MinQuality: 0.5}, true},
		{"quality fail", Filter{MinQuality: 0.95}, false},
		{"combined", Filter{Type: ctxtype.LocationSighting, Subject: subj, MinQuality: 0.5}, true},
	}
	for _, c := range cases {
		if got := c.f.Matches(e); got != c.want {
			t.Errorf("%s: Matches = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFilterMatchesInWithEquivalence(t *testing.T) {
	reg := ctxtype.NewRegistry()
	src := guid.New(guid.KindDevice)
	wlan := New(ctxtype.LocationSightingWLAN, src, 1, t0, nil)
	f := Filter{Type: ctxtype.LocationSightingDoor}
	if f.Matches(wlan) {
		t.Fatal("plain matching should not cross equivalence classes")
	}
	if !f.MatchesIn(wlan, reg) {
		t.Fatal("registry matching should accept equivalent type")
	}
}

func TestStringForms(t *testing.T) {
	src := guid.New(guid.KindDevice)
	e := New(ctxtype.PrinterStatus, src, 9, t0, nil)
	if s := e.String(); s == "" {
		t.Fatal("empty String")
	}
	f := Filter{Type: ctxtype.PrinterStatus, Source: src, Subject: src}
	if s := f.String(); s == "" {
		t.Fatal("empty filter String")
	}
}

// Property: every event matches the filter formed from its own fields.
func TestPropSelfFilterMatches(t *testing.T) {
	types := []ctxtype.Type{
		ctxtype.LocationSightingDoor, ctxtype.PrinterStatus,
		ctxtype.TemperatureCelsius, ctxtype.PathRoute,
	}
	f := func(ti uint8, seq uint64, q uint8) bool {
		e := New(types[int(ti)%len(types)], guid.New(guid.KindEntity), seq, t0, nil).
			WithSubject(guid.New(guid.KindPerson)).
			WithQuality(float64(q%100)/100 + 0.01)
		self := Filter{Type: e.Type, Source: e.Source, Subject: e.Subject, MinQuality: e.Quality}
		return self.Matches(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode is the identity on the comparable fields.
func TestPropEncodeDecodeIdentity(t *testing.T) {
	f := func(seq uint64) bool {
		e := New(ctxtype.TemperatureCelsius, guid.New(guid.KindDevice), seq, t0,
			map[string]any{"value": float64(seq % 100)})
		data, err := e.Encode()
		if err != nil {
			return false
		}
		back, err := Decode(data)
		if err != nil {
			return false
		}
		v, _ := back.Float("value")
		return back.ID == e.ID && back.Seq == e.Seq && v == float64(seq%100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	e := New(ctxtype.LocationSightingDoor, guid.New(guid.KindDevice), 1, t0,
		map[string]any{"door": "L10.01"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterMatch(b *testing.B) {
	e := New(ctxtype.LocationSightingDoor, guid.New(guid.KindDevice), 1, t0, nil)
	f := Filter{Type: ctxtype.LocationSighting}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !f.Matches(e) {
			b.Fatal("no match")
		}
	}
}
