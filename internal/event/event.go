// Package event defines the typed context events that flow through the SCI
// infrastructure.
//
// Section 3.1 of the paper: "A CE allows its entity to communicate by means
// of producing and consuming typed events." Every piece of contextual
// information — a door sighting, an interpreted position, a path, a printer
// status change, an arrival announcement — is an Event carrying a context
// type (internal/ctxtype), the GUID of the producing entity, a timestamp,
// a monotone per-producer sequence number, and a JSON-object payload.
package event

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/guid"
)

// Event is one typed context observation. Events are immutable once
// published; consumers must not modify the payload map.
type Event struct {
	// ID uniquely names this event instance.
	ID guid.GUID `json:"id"`
	// Type is the context type of the payload.
	Type ctxtype.Type `json:"type"`
	// Source is the GUID of the producing Context Entity.
	Source guid.GUID `json:"source"`
	// Subject optionally names the entity the event is about (e.g. the
	// person sighted at a door), as distinct from the sensor producing it.
	Subject guid.GUID `json:"subject,omitzero"`
	// Range is the GUID of the Range within which the event was produced.
	Range guid.GUID `json:"range,omitzero"`
	// Seq is the producer's monotone sequence number, used by consumers to
	// detect gaps after configuration repair (experiment E8).
	Seq uint64 `json:"seq"`
	// Time is the production instant.
	Time time.Time `json:"time"`
	// Quality grades the observation in (0,1]; 0 means unspecified.
	Quality float64 `json:"quality,omitempty"`
	// Payload is the typed content. Keys are type-specific; see the payload
	// helper constructors in this package and in internal/sensor.
	Payload map[string]any `json:"payload,omitempty"`
}

// ErrBadEvent reports a structurally invalid event.
var ErrBadEvent = errors.New("event: invalid")

// New constructs an event with a fresh GUID and the given fields.
func New(t ctxtype.Type, source guid.GUID, seq uint64, at time.Time, payload map[string]any) Event {
	return Event{
		ID:      guid.New(guid.KindEvent),
		Type:    t,
		Source:  source,
		Seq:     seq,
		Time:    at,
		Payload: payload,
	}
}

// Validate checks structural invariants: a usable ID, a well-formed type and
// a non-nil source.
func (e Event) Validate() error {
	if e.ID.IsNil() {
		return fmt.Errorf("%w: nil id", ErrBadEvent)
	}
	if err := e.Type.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadEvent, err)
	}
	if e.Type == ctxtype.Wildcard {
		return fmt.Errorf("%w: wildcard type on concrete event", ErrBadEvent)
	}
	if e.Source.IsNil() {
		return fmt.Errorf("%w: nil source", ErrBadEvent)
	}
	return nil
}

// WithSubject returns a copy of e with the subject set.
func (e Event) WithSubject(s guid.GUID) Event {
	e.Subject = s
	return e
}

// WithRange returns a copy of e with the range set.
func (e Event) WithRange(r guid.GUID) Event {
	e.Range = r
	return e
}

// WithQuality returns a copy of e with the quality score set.
func (e Event) WithQuality(q float64) Event {
	e.Quality = q
	return e
}

// String renders a compact log form.
func (e Event) String() string {
	return fmt.Sprintf("event{%s from %s seq=%d}", e.Type, e.Source.Short(), e.Seq)
}

// Encode marshals the event to JSON.
func (e Event) Encode() ([]byte, error) {
	return json.Marshal(e)
}

// Decode unmarshals an event from JSON and validates it.
func Decode(data []byte) (Event, error) {
	var e Event
	if err := json.Unmarshal(data, &e); err != nil {
		return Event{}, fmt.Errorf("event: decode: %w", err)
	}
	if err := e.Validate(); err != nil {
		return Event{}, err
	}
	return e, nil
}

// Float extracts a numeric payload field, accepting the float64 that
// encoding/json produces as well as native ints from in-process events.
func (e Event) Float(key string) (float64, bool) {
	switch v := e.Payload[key].(type) {
	case float64:
		return v, true
	case int:
		return float64(v), true
	case int64:
		return float64(v), true
	case json.Number:
		f, err := v.Float64()
		return f, err == nil
	default:
		return 0, false
	}
}

// Str extracts a string payload field.
func (e Event) Str(key string) (string, bool) {
	s, ok := e.Payload[key].(string)
	return s, ok
}

// GUIDField extracts a GUID payload field stored in canonical text form.
func (e Event) GUIDField(key string) (guid.GUID, bool) {
	s, ok := e.Payload[key].(string)
	if !ok {
		return guid.Nil, false
	}
	g, err := guid.Parse(s)
	return g, err == nil
}

// Filter selects events. The zero Filter matches everything.
type Filter struct {
	// Type, when non-empty, requires the event type to satisfy it (exact,
	// descendant, or registered equivalence when a Registry is supplied at
	// match time). Wildcard matches everything.
	Type ctxtype.Type `json:"type,omitempty"`
	// Source, when non-nil, requires an exact producing-entity match.
	Source guid.GUID `json:"source,omitzero"`
	// Subject, when non-nil, requires an exact subject match.
	Subject guid.GUID `json:"subject,omitzero"`
	// Range, when non-nil, requires the event's range to match.
	Range guid.GUID `json:"range,omitzero"`
	// MinQuality, when positive, requires event quality ≥ MinQuality.
	MinQuality float64 `json:"min_quality,omitempty"`
}

// Matches applies the filter using plain hierarchical type matching (no
// equivalence registry).
func (f Filter) Matches(e Event) bool {
	return f.MatchesIn(e, nil)
}

// MatchesIn applies the filter; when reg is non-nil, type matching also
// accepts declared semantic equivalences.
func (f Filter) MatchesIn(e Event, reg *ctxtype.Registry) bool {
	if f.Type != "" && f.Type != ctxtype.Wildcard {
		ok := e.Type.HasAncestor(f.Type)
		if !ok && reg != nil {
			ok = reg.Satisfies(e.Type, f.Type)
		}
		if !ok {
			return false
		}
	}
	return f.MatchesRest(e)
}

// MatchesRest applies every constraint except the type. The dispatch index
// in internal/eventbus resolves the type constraint through its pattern
// index and calls MatchesRest for the remaining per-event checks, all of
// which are allocation-free comparisons.
func (f Filter) MatchesRest(e Event) bool {
	if !f.Source.IsNil() && e.Source != f.Source {
		return false
	}
	if !f.Subject.IsNil() && e.Subject != f.Subject {
		return false
	}
	if !f.Range.IsNil() && e.Range != f.Range {
		return false
	}
	if f.MinQuality > 0 && e.Quality < f.MinQuality {
		return false
	}
	return true
}

// String renders the filter for logs.
func (f Filter) String() string {
	s := "filter{"
	if f.Type != "" {
		s += "type=" + string(f.Type)
	}
	if !f.Source.IsNil() {
		s += " src=" + f.Source.Short()
	}
	if !f.Subject.IsNil() {
		s += " subj=" + f.Subject.Short()
	}
	return s + "}"
}
