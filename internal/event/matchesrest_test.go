package event

import (
	"testing"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/guid"
)

// TestMatchesRestAgreesWithMatches pins the contract the dispatch index
// relies on: once the type constraint is satisfied, MatchesRest must agree
// with the full Matches on every other field.
func TestMatchesRestAgreesWithMatches(t *testing.T) {
	src := guid.New(guid.KindDevice)
	subj := guid.New(guid.KindPerson)
	rng := guid.New(guid.KindRange)
	at := time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)
	e := New(ctxtype.TemperatureCelsius, src, 1, at, nil).
		WithSubject(subj).WithRange(rng).WithQuality(0.8)

	cases := []struct {
		name string
		f    Filter
		want bool
	}{
		{"empty", Filter{}, true},
		{"source match", Filter{Source: src}, true},
		{"source mismatch", Filter{Source: guid.New(guid.KindDevice)}, false},
		{"subject match", Filter{Subject: subj}, true},
		{"subject mismatch", Filter{Subject: guid.New(guid.KindPerson)}, false},
		{"range match", Filter{Range: rng}, true},
		{"range mismatch", Filter{Range: guid.New(guid.KindRange)}, false},
		{"quality met", Filter{MinQuality: 0.5}, true},
		{"quality unmet", Filter{MinQuality: 0.9}, false},
		{"all met", Filter{Source: src, Subject: subj, Range: rng, MinQuality: 0.5}, true},
	}
	for _, tc := range cases {
		if got := tc.f.MatchesRest(e); got != tc.want {
			t.Errorf("%s: MatchesRest = %v, want %v", tc.name, got, tc.want)
		}
		if got := tc.f.Matches(e); got != tc.want {
			t.Errorf("%s: Matches disagrees: %v, want %v", tc.name, got, tc.want)
		}
	}
}
