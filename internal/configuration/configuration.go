// Package configuration implements the configuration runtime: it turns the
// Query Resolver's subscription graphs into live event plumbing through the
// Event Mediator, monitors the providers involved, and repairs the graph
// when a provider departs or fails.
//
// This is the paper's adaptivity requirement made concrete: "It will also
// adjust the composition of these components dynamically in the case of
// environment changes, thus improving service and fault tolerance while
// minimising user intervention" (Section 6). Repair re-runs resolution for
// the broken sub-graph only, preferring semantically equivalent providers
// (a dead door sensor's duties can fall to a W-LAN base station), and is
// bounded by a per-configuration repair budget — the paper's future-work
// item 3 asks for exactly such "bounds on acceptable adaptation".
package configuration

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/entity"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/mediator"
	"sci/internal/metrics"
	"sci/internal/query"
	"sci/internal/resolver"
)

// Components resolves local component GUIDs to their CE implementations so
// the runtime can deliver edge events into CE inputs. A Range's Context
// Server provides this.
type Components interface {
	Component(guid.GUID) (entity.CE, bool)
}

// ComponentsFunc adapts a func to Components.
type ComponentsFunc func(guid.GUID) (entity.CE, bool)

// Component implements Components.
func (f ComponentsFunc) Component(g guid.GUID) (entity.CE, bool) { return f(g) }

// DeliverFunc receives the configuration's root output events (bound for
// the querying CAA) one at a time.
type DeliverFunc func(event.Event)

// BatchDeliverFunc receives the configuration's root output events in runs:
// every event queued since the delivery loop's last wakeup arrives as one
// slice. Consumers that feed an outbound coalescer (remote proxies) take
// their lock once per run instead of once per event. The slice is reused
// between invocations and must not be retained.
type BatchDeliverFunc func([]event.Event)

// Primer is implemented by source CEs that can re-emit their current state
// on demand. After instantiating a configuration the runtime primes its
// sources so subscribers receive an immediate snapshot instead of waiting
// for the next state change (initial-value semantics; CAPA's printer
// selection depends on it).
type Primer interface {
	Prime()
}

// Status describes an active configuration.
type Status struct {
	// ID is the configuration id.
	ID guid.GUID
	// Providers are the entities currently bound.
	Providers []guid.GUID
	// Repairs counts successful repairs so far.
	Repairs int
	// Subscriptions counts live mediator subscriptions.
	Subscriptions int
}

// Runtime instantiates, monitors and repairs configurations. Construct with
// New.
type Runtime struct {
	med   *mediator.Mediator
	res   *resolver.Resolver
	comps Components

	// MaxRepairs bounds adaptation per configuration (stability control);
	// default 8.
	maxRepairs int

	mu     sync.Mutex
	active map[guid.GUID]*activeCfg
	byProv map[guid.GUID]guid.Set // provider → configurations using it

	// RepairLatency records time from failure report to repaired plumbing
	// (experiment E8); Repairs/RepairFailures count outcomes.
	RepairLatency  metrics.Histogram
	Repairs        metrics.Counter
	RepairFailures metrics.Counter
}

type activeCfg struct {
	cfg     *resolver.Configuration
	deliver BatchDeliverFunc
	rctx    resolver.Context
	repairs int
	dead    bool
}

// edgeQueueLen is the per-subscription queue capacity for configuration
// plumbing: generous enough to absorb sensor bursts without dropping
// context updates (freshest-wins drop still applies beyond it).
const edgeQueueLen = 1024

// Errors.
var (
	ErrUnknownConfiguration = errors.New("configuration: unknown configuration")
	ErrRepairBudget         = errors.New("configuration: repair budget exhausted")
)

// New builds a Runtime.
func New(med *mediator.Mediator, res *resolver.Resolver, comps Components, maxRepairs int) *Runtime {
	if maxRepairs <= 0 {
		maxRepairs = 8
	}
	return &Runtime{
		med:        med,
		res:        res,
		comps:      comps,
		maxRepairs: maxRepairs,
		active:     make(map[guid.GUID]*activeCfg),
		byProv:     make(map[guid.GUID]guid.Set),
	}
}

// Instantiate wires cfg into the mediator: one subscription per edge
// delivering into the consumer CE's HandleInput, plus the root subscription
// delivering to the querying application. rctx is remembered for repairs.
func (r *Runtime) Instantiate(cfg *resolver.Configuration, rctx resolver.Context, deliver DeliverFunc) error {
	var all BatchDeliverFunc
	if deliver != nil {
		all = func(events []event.Event) {
			for i := range events {
				deliver(events[i])
			}
		}
	}
	return r.InstantiateBatch(cfg, rctx, all)
}

// InstantiateBatch is Instantiate with batched root delivery: the root
// subscription is established through Mediator.SubscribeBatch, so deliver
// receives every queued root event of a wakeup as one slice.
func (r *Runtime) InstantiateBatch(cfg *resolver.Configuration, rctx resolver.Context, deliver BatchDeliverFunc) error {
	if cfg == nil || cfg.Root == nil {
		return errors.New("configuration: nil configuration")
	}
	ac := &activeCfg{cfg: cfg, deliver: deliver, rctx: rctx}
	if err := r.wire(ac); err != nil {
		r.med.CancelConfiguration(cfg.ID)
		return err
	}
	r.mu.Lock()
	r.active[cfg.ID] = ac
	r.indexProvidersLocked(cfg)
	r.mu.Unlock()
	r.primeSources(cfg.Root)
	return nil
}

// primeSources asks every leaf provider that supports it to re-emit its
// current state.
func (r *Runtime) primeSources(b *resolver.Binding) {
	if b == nil {
		return
	}
	if len(b.Inputs) == 0 {
		if ce, ok := r.comps.Component(b.Provider); ok {
			if p, ok := ce.(Primer); ok {
				p.Prime()
			}
		}
		return
	}
	for _, in := range b.Inputs {
		r.primeSources(in)
	}
}

// wire establishes all subscriptions for the configuration's current graph.
func (r *Runtime) wire(ac *activeCfg) error {
	cfg := ac.cfg
	for _, e := range cfg.Edges {
		consumer, ok := r.comps.Component(e.Consumer)
		if !ok {
			return fmt.Errorf("configuration: consumer %s not local", e.Consumer.Short())
		}
		filter := event.Filter{Type: e.Type, Source: e.Producer}
		opts := mediator.SubOptions{Configuration: cfg.ID, QueueLen: edgeQueueLen}
		// Batch-capable consumers (remote proxies feeding a wire coalescer)
		// take a burst as one slice; plain CEs stay per event.
		if bc, ok := consumer.(entity.BatchInput); ok {
			if _, err := r.med.SubscribeBatch(e.Consumer, filter, bc.HandleInputAll, opts); err != nil {
				return err
			}
			continue
		}
		ce := consumer
		if _, err := r.med.Subscribe(e.Consumer, filter, func(ev event.Event) {
			ce.HandleInput(ev)
		}, opts); err != nil {
			return err
		}
	}
	// Root delivery to the querying application: batched, so a burst crosses
	// the mediator→application edge as one slice.
	if ac.deliver != nil {
		rootFilter := event.Filter{Type: cfg.Root.Output, Source: cfg.Root.Provider}
		opts := mediator.SubOptions{
			Configuration: cfg.ID,
			OneShot:       cfg.Query.Mode == query.ModeOnce,
			QueueLen:      edgeQueueLen,
		}
		if _, err := r.med.SubscribeBatch(cfg.Query.Owner, rootFilter, func(evs []event.Event) {
			ac.deliver(evs)
		}, opts); err != nil {
			return err
		}
	}
	return nil
}

// Teardown removes the configuration and its subscriptions.
func (r *Runtime) Teardown(id guid.GUID) error {
	r.mu.Lock()
	ac, ok := r.active[id]
	if ok {
		delete(r.active, id)
		r.unindexProvidersLocked(ac.cfg)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownConfiguration, id.Short())
	}
	r.med.CancelConfiguration(id)
	return nil
}

// Active returns the status of every live configuration, ordered by id.
func (r *Runtime) Active() []Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Status, 0, len(r.active))
	for id, ac := range r.active {
		out = append(out, Status{
			ID:            id,
			Providers:     ac.cfg.Providers(),
			Repairs:       ac.repairs,
			Subscriptions: len(r.med.ForConfiguration(id)),
		})
	}
	// Sort by id for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && guid.Less(out[j].ID, out[j-1].ID); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Uses reports whether any active configuration is bound to the provider.
func (r *Runtime) Uses(provider guid.GUID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byProv[provider]) > 0
}

// HandleDeparture repairs every configuration bound to the departed
// provider. It is the hook the Registrar watcher calls. Returns the number
// of configurations repaired (configurations whose repair fails are torn
// down).
func (r *Runtime) HandleDeparture(provider guid.GUID) int {
	r.mu.Lock()
	affectedSet := r.byProv[provider]
	affected := make([]guid.GUID, 0, len(affectedSet))
	for id := range affectedSet {
		affected = append(affected, id)
	}
	r.mu.Unlock()
	guid.Sort(affected)

	repaired := 0
	for _, id := range affected {
		if err := r.Repair(id, provider); err == nil {
			repaired++
		} else {
			// A configuration that cannot be repaired is torn down: the
			// application sees the stream stop rather than silently stall.
			_ = r.Teardown(id)
			r.RepairFailures.Inc()
		}
	}
	return repaired
}

// Repair rebinds the parts of configuration id that depended on the failed
// provider, then rewires its subscriptions. Subscription churn during
// repair can drop in-flight events; consumers detect the gap via sequence
// numbers.
func (r *Runtime) Repair(id, failed guid.GUID) error {
	start := nowMonotonic()
	r.mu.Lock()
	ac, ok := r.active[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownConfiguration, id.Short())
	}
	if ac.repairs >= r.maxRepairs {
		r.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrRepairBudget, r.maxRepairs)
	}
	r.unindexProvidersLocked(ac.cfg)
	r.mu.Unlock()

	rctx := ac.rctx
	if rctx.Exclude == nil {
		rctx.Exclude = guid.NewSet()
	}
	rctx.Exclude.Add(failed)

	newRoot, err := r.repairBinding(ac.cfg.Root, ac.cfg.Query, failed, rctx)
	if err != nil {
		// Restore indexing so a later retry can find the configuration.
		r.mu.Lock()
		r.indexProvidersLocked(ac.cfg)
		r.mu.Unlock()
		return err
	}
	ac.cfg.Root = newRoot
	ac.cfg.Edges = resolver.Flatten(newRoot)

	// Rewire: drop all old subscriptions, then create the new set.
	r.med.CancelConfiguration(id)
	if err := r.wire(ac); err != nil {
		r.med.CancelConfiguration(id)
		return err
	}

	r.mu.Lock()
	ac.repairs++
	r.indexProvidersLocked(ac.cfg)
	r.mu.Unlock()

	r.Repairs.Inc()
	r.RepairLatency.Record(nowMonotonic() - start)
	return nil
}

// repairBinding returns a binding tree equal to b but with every subtree
// rooted at the failed provider re-resolved.
func (r *Runtime) repairBinding(b *resolver.Binding, q query.Query, failed guid.GUID, rctx resolver.Context) (*resolver.Binding, error) {
	if b == nil {
		return nil, nil
	}
	if b.Provider == failed {
		return r.res.ResolveReplacement(q, b.Want, failed, rctx)
	}
	out := &resolver.Binding{
		Provider: b.Provider,
		Want:     b.Want,
		Output:   b.Output,
	}
	for _, in := range b.Inputs {
		sub, err := r.repairBinding(in, q, failed, rctx)
		if err != nil {
			return nil, err
		}
		out.Inputs = append(out.Inputs, sub)
	}
	return out, nil
}

func (r *Runtime) indexProvidersLocked(cfg *resolver.Configuration) {
	for _, p := range cfg.Providers() {
		set, ok := r.byProv[p]
		if !ok {
			set = guid.NewSet()
			r.byProv[p] = set
		}
		set.Add(cfg.ID)
	}
}

func (r *Runtime) unindexProvidersLocked(cfg *resolver.Configuration) {
	for _, p := range cfg.Providers() {
		if set, ok := r.byProv[p]; ok {
			set.Remove(cfg.ID)
			if len(set) == 0 {
				delete(r.byProv, p)
			}
		}
	}
}

// nowMonotonic returns a monotonic nanosecond reading for latency metrics.
func nowMonotonic() int64 { return int64(time.Since(processStart)) }

var processStart = time.Now()

// RootFilter returns the filter an application needs to receive the
// configuration's answers directly (diagnostics).
func RootFilter(cfg *resolver.Configuration) event.Filter {
	return event.Filter{Type: cfg.Root.Output, Source: cfg.Root.Provider}
}

// OutputType returns the root output type, or wildcard when unknown.
func OutputType(cfg *resolver.Configuration) ctxtype.Type {
	if cfg == nil || cfg.Root == nil {
		return ctxtype.Wildcard
	}
	return cfg.Root.Output
}
