package configuration

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/entity"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/mediator"
	"sci/internal/profile"
	"sci/internal/query"
	"sci/internal/resolver"
)

var epoch = time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)

// rig assembles a full local pipeline: sensor CEs → interpreter CE → CAA,
// with mediator, resolver and runtime.
type rig struct {
	med      *mediator.Mediator
	profiles *profile.Manager
	types    *ctxtype.Registry
	res      *resolver.Resolver
	rt       *Runtime
	clk      *clock.Manual

	comps map[guid.GUID]entity.CE

	doors  []*sensorCE
	wlan   *sensorCE
	objLoc *entity.ObjLocationCE
}

// sensorCE is a minimal source CE emitting sightings on demand.
type sensorCE struct {
	*entity.Base
}

func newSensorCE(name string, out ctxtype.Type, quality float64, clk *clock.Manual) *sensorCE {
	s := &sensorCE{}
	s.Base = entity.NewBase(guid.KindDevice, profile.Profile{
		Name:    name,
		Outputs: []ctxtype.Type{out},
		Quality: quality,
	}, clk)
	return s
}

func (s *sensorCE) sight(subject guid.GUID, place string) error {
	return s.Emit(s.Profile().Outputs[0], subject, map[string]any{"place": place})
}

func newRig(t testing.TB) *rig {
	t.Helper()
	r := &rig{
		profiles: &profile.Manager{},
		types:    ctxtype.NewRegistry(),
		clk:      clock.NewManual(epoch),
		comps:    make(map[guid.GUID]entity.CE),
	}
	r.med = mediator.New(r.types)
	r.res = resolver.New(r.profiles, r.types, nil)
	r.rt = New(r.med, r.res, ComponentsFunc(func(g guid.GUID) (entity.CE, bool) {
		ce, ok := r.comps[g]
		return ce, ok
	}), 4)

	add := func(ce entity.CE) {
		ce.Attach(r.med)
		r.comps[ce.ID()] = ce
		if err := r.profiles.Put(ce.Profile()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		d := newSensorCE(fmt.Sprintf("door-%d", i), ctxtype.LocationSightingDoor, 0.9, r.clk)
		r.doors = append(r.doors, d)
		add(d)
	}
	r.wlan = newSensorCE("basestation", ctxtype.LocationSightingWLAN, 0.6, r.clk)
	add(r.wlan)
	r.objLoc = entity.NewObjLocationCE(nil, r.clk)
	add(r.objLoc)
	return r
}

func (r *rig) close() {
	r.med.Close()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func positionQuery(owner guid.GUID) query.Query {
	return query.New(owner, query.What{Pattern: ctxtype.LocationPosition}, query.ModeSubscribe)
}

func TestInstantiateDeliversEndToEnd(t *testing.T) {
	r := newRig(t)
	defer r.close()
	owner := guid.New(guid.KindApplication)
	q := positionQuery(owner)
	cfg, err := r.res.Resolve(q, resolver.Context{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []event.Event
	if err := r.rt.Instantiate(cfg, resolver.Context{}, func(e event.Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	// A door sighting flows: door → objLoc → CAA as location.position.
	bob := guid.New(guid.KindPerson)
	boundDoor := cfg.Root.Inputs[0].Provider
	var src *sensorCE
	for _, d := range r.doors {
		if d.ID() == boundDoor {
			src = d
		}
	}
	if src == nil {
		t.Fatalf("bound provider %s is not a door", boundDoor.Short())
	}
	if err := src.sight(bob, "l10.01"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})
	mu.Lock()
	e := got[0]
	mu.Unlock()
	if e.Type != ctxtype.LocationPosition || e.Subject != bob {
		t.Fatalf("delivered = %+v", e)
	}
	// Status bookkeeping.
	sts := r.rt.Active()
	if len(sts) != 1 || sts[0].ID != cfg.ID || sts[0].Repairs != 0 {
		t.Fatalf("status = %+v", sts)
	}
	if sts[0].Subscriptions != 3 { // objLoc←door ×2 (fan-in) + root
		t.Fatalf("subscriptions = %d", sts[0].Subscriptions)
	}
	if !r.rt.Uses(boundDoor) {
		t.Fatal("Uses(boundDoor) false")
	}
}

func TestInstantiateValidation(t *testing.T) {
	r := newRig(t)
	defer r.close()
	if err := r.rt.Instantiate(nil, resolver.Context{}, nil); err == nil {
		t.Fatal("nil configuration accepted")
	}
	// Configuration with a non-local consumer fails and cleans up.
	q := positionQuery(guid.New(guid.KindApplication))
	cfg, err := r.res.Resolve(q, resolver.Context{})
	if err != nil {
		t.Fatal(err)
	}
	delete(r.comps, r.objLoc.ID())
	if err := r.rt.Instantiate(cfg, resolver.Context{}, nil); err == nil {
		t.Fatal("missing consumer accepted")
	}
	if r.med.Len() != 0 {
		t.Fatal("failed instantiate leaked subscriptions")
	}
}

func TestTeardown(t *testing.T) {
	r := newRig(t)
	defer r.close()
	q := positionQuery(guid.New(guid.KindApplication))
	cfg, err := r.res.Resolve(q, resolver.Context{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.rt.Instantiate(cfg, resolver.Context{}, func(event.Event) {}); err != nil {
		t.Fatal(err)
	}
	if err := r.rt.Teardown(cfg.ID); err != nil {
		t.Fatal(err)
	}
	if err := r.rt.Teardown(cfg.ID); !errors.Is(err, ErrUnknownConfiguration) {
		t.Fatalf("double teardown: %v", err)
	}
	if r.med.Len() != 0 {
		t.Fatal("teardown leaked subscriptions")
	}
	if len(r.rt.Active()) != 0 {
		t.Fatal("still active")
	}
	if r.rt.Uses(cfg.Root.Provider) {
		t.Fatal("Uses after teardown")
	}
}

func TestRepairRebindsToEquivalentProvider(t *testing.T) {
	r := newRig(t)
	defer r.close()
	owner := guid.New(guid.KindApplication)
	q := positionQuery(owner)
	cfg, err := r.res.Resolve(q, resolver.Context{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []event.Event
	if err := r.rt.Instantiate(cfg, resolver.Context{}, func(e event.Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	// Kill BOTH door sensors: remove their profiles, then report failure of
	// the bound one. The repair must rebind to the semantically equivalent
	// WLAN source.
	bound := cfg.Root.Inputs[0].Provider
	for _, d := range r.doors {
		r.profiles.Remove(d.ID())
	}
	if n := r.rt.HandleDeparture(bound); n != 1 {
		t.Fatalf("HandleDeparture repaired %d", n)
	}
	// The repaired graph must use the WLAN station.
	sts := r.rt.Active()
	if len(sts) != 1 || sts[0].Repairs != 1 {
		t.Fatalf("status = %+v", sts)
	}
	found := false
	for _, p := range sts[0].Providers {
		if p == r.wlan.ID() {
			found = true
		}
		if p == bound {
			t.Fatal("failed provider still bound")
		}
	}
	if !found {
		t.Fatal("wlan not bound after repair")
	}
	// Updated information keeps flowing (the paper's §3.2 promise).
	bob := guid.New(guid.KindPerson)
	if err := r.wlan.sight(bob, "lobby"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 1
	})
	if r.rt.Repairs.Value() != 1 || r.rt.RepairLatency.Count() != 1 {
		t.Fatal("repair metrics not recorded")
	}
}

func TestRepairFailureTearsDown(t *testing.T) {
	r := newRig(t)
	defer r.close()
	q := positionQuery(guid.New(guid.KindApplication))
	cfg, err := r.res.Resolve(q, resolver.Context{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.rt.Instantiate(cfg, resolver.Context{}, func(event.Event) {}); err != nil {
		t.Fatal(err)
	}
	// Remove every sighting source; repair has nothing to rebind to.
	for _, d := range r.doors {
		r.profiles.Remove(d.ID())
	}
	r.profiles.Remove(r.wlan.ID())
	bound := cfg.Root.Inputs[0].Provider
	if n := r.rt.HandleDeparture(bound); n != 0 {
		t.Fatalf("repaired %d, want 0", n)
	}
	if len(r.rt.Active()) != 0 {
		t.Fatal("unrepairable configuration not torn down")
	}
	if r.rt.RepairFailures.Value() != 1 {
		t.Fatal("failure not counted")
	}
	if r.med.Len() != 0 {
		t.Fatal("teardown leaked subscriptions")
	}
}

func TestRepairBudgetExhaustion(t *testing.T) {
	r := newRig(t)
	defer r.close()
	// Runtime with budget 1.
	rt := New(r.med, r.res, ComponentsFunc(func(g guid.GUID) (entity.CE, bool) {
		ce, ok := r.comps[g]
		return ce, ok
	}), 1)
	q := positionQuery(guid.New(guid.KindApplication))
	cfg, err := r.res.Resolve(q, resolver.Context{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Instantiate(cfg, resolver.Context{}, nil); err != nil {
		t.Fatal(err)
	}
	first := cfg.Root.Inputs[0].Provider
	if err := rt.Repair(cfg.ID, first); err != nil {
		t.Fatal(err)
	}
	second := cfg.Root.Inputs[0].Provider
	if err := rt.Repair(cfg.ID, second); !errors.Is(err, ErrRepairBudget) {
		t.Fatalf("budget not enforced: %v", err)
	}
}

func TestRepairUnknownConfiguration(t *testing.T) {
	r := newRig(t)
	defer r.close()
	err := r.rt.Repair(guid.New(guid.KindConfiguration), guid.New(guid.KindDevice))
	if !errors.Is(err, ErrUnknownConfiguration) {
		t.Fatalf("unknown configuration: %v", err)
	}
	if n := r.rt.HandleDeparture(guid.New(guid.KindDevice)); n != 0 {
		t.Fatal("departure of unused provider repaired something")
	}
}

func TestOneShotModeDeliversOnce(t *testing.T) {
	r := newRig(t)
	defer r.close()
	owner := guid.New(guid.KindApplication)
	q := query.New(owner, query.What{Pattern: ctxtype.LocationPosition}, query.ModeOnce)
	cfg, err := r.res.Resolve(q, resolver.Context{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := 0
	if err := r.rt.Instantiate(cfg, resolver.Context{}, func(event.Event) {
		mu.Lock()
		count++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	bound := cfg.Root.Inputs[0].Provider
	var src *sensorCE
	for _, d := range r.doors {
		if d.ID() == bound {
			src = d
		}
	}
	bob := guid.New(guid.KindPerson)
	for i := 0; i < 3; i++ {
		if err := src.sight(bob, "l10.01"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return count >= 1
	})
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("one-shot delivered %d times", count)
	}
}

func TestRootFilterAndOutputType(t *testing.T) {
	r := newRig(t)
	defer r.close()
	q := positionQuery(guid.New(guid.KindApplication))
	cfg, err := r.res.Resolve(q, resolver.Context{})
	if err != nil {
		t.Fatal(err)
	}
	f := RootFilter(cfg)
	if f.Type != ctxtype.LocationPosition || f.Source != cfg.Root.Provider {
		t.Fatalf("filter = %+v", f)
	}
	if OutputType(cfg) != ctxtype.LocationPosition {
		t.Fatal("OutputType wrong")
	}
	if OutputType(nil) != ctxtype.Wildcard {
		t.Fatal("OutputType(nil) wrong")
	}
}

// batchCE is an edge consumer that absorbs whole event runs
// (entity.BatchInput); the runtime must wire it through SubscribeBatch.
type batchCE struct {
	*entity.Base
	mu     sync.Mutex
	events []event.Event
	calls  int
}

func newBatchCE(clk *clock.Manual) *batchCE {
	b := &batchCE{}
	b.Base = entity.NewBase(guid.KindSoftware, profile.Profile{
		Name:   "batch-sink",
		Inputs: []ctxtype.Type{ctxtype.LocationSightingDoor},
	}, clk)
	return b
}

func (b *batchCE) HandleInputAll(events []event.Event) {
	b.mu.Lock()
	b.events = append(b.events, events...)
	b.calls++
	b.mu.Unlock()
	// One aggregated re-emission per run: the root subscription sees a
	// stream whose cardinality equals the number of runs, not events.
	_ = b.Emit(ctxtype.LocationSightingDoor, guid.Nil, map[string]any{"n": len(events)})
}

func (b *batchCE) snapshot() (int, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events), b.calls
}

// TestBatchEdgeAndBatchRootDelivery: a BatchInput consumer receives edge
// events as runs, and InstantiateBatch hands root output runs to the
// application as slices.
func TestBatchEdgeAndBatchRootDelivery(t *testing.T) {
	r := newRig(t)
	defer r.close()
	sink := newBatchCE(r.clk)
	sink.Attach(r.med)
	r.comps[sink.ID()] = sink

	owner := guid.New(guid.KindApplication)
	q := query.New(owner, query.What{Pattern: ctxtype.LocationSightingDoor}, query.ModeSubscribe)
	cfg := &resolver.Configuration{
		ID:    guid.New(guid.KindConfiguration),
		Query: q,
		Root: &resolver.Binding{
			Provider: sink.ID(),
			Want:     ctxtype.LocationSightingDoor,
			Output:   ctxtype.LocationSightingDoor,
			Inputs: []*resolver.Binding{{
				Provider: r.doors[0].ID(),
				Want:     ctxtype.LocationSightingDoor,
				Output:   ctxtype.LocationSightingDoor,
			}},
		},
	}
	cfg.Edges = resolver.Flatten(cfg.Root)

	var mu sync.Mutex
	var runs [][]event.Event
	if err := r.rt.InstantiateBatch(cfg, resolver.Context{}, func(events []event.Event) {
		cp := append([]event.Event(nil), events...)
		mu.Lock()
		runs = append(runs, cp)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	subject := guid.New(guid.KindPerson)
	const n = 5
	for i := 0; i < n; i++ {
		if err := r.doors[0].sight(subject, "x"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { got, _ := sink.snapshot(); return got >= n })
	got, calls := sink.snapshot()
	if got != n {
		t.Fatalf("batch edge delivered %d events, want %d", got, n)
	}
	if calls > n {
		t.Fatalf("batch edge used %d calls for %d events", calls, n)
	}
	// Root delivery receives the sink's aggregated re-emissions as slices:
	// one delivered event per edge run.
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, run := range runs {
			total += len(run)
		}
		return total >= calls
	})
}
