// Package mobility implements the paper's model of mobility (Section 3.4):
// "In a dynamic environment entities will move in and between Ranges
// throughout their lifecycle. To allow for this mobility each range
// monitors internal activity as well as activity at its boundaries in order
// to detect the arrival and departure of entities."
//
// World is the simulated ground truth: people wearing ID badges and
// carrying W-LAN devices move through the topological place graph. Movement
// traverses the shortest route; crossing a door with a badge triggers that
// door's sensor, and every visited place is offered to the registered base
// stations — exactly the two detection mechanisms the paper names ("a user
// wearing an id tag ... walking through a door equipped with a sensor" and
// "a user with a W-LAN equipped device ... leaving the effective operating
// range of a wireless network").
package mobility

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/sensor"
)

// Actor is a mobile person (or autonomous device) in the world.
type Actor struct {
	// ID is the person's GUID; their badge transmits it.
	ID guid.GUID
	// Name labels the actor ("bob").
	Name string
	// Badge reports whether the actor wears an ID badge (door sensors see
	// badged actors only).
	Badge bool
	// Device is the GUID of a carried W-LAN device (nil = none).
	Device guid.GUID
}

// World is the simulation ground truth. Construct with NewWorld. Safe for
// concurrent use; movement is serialised.
type World struct {
	places *location.Map

	mu       sync.Mutex
	actors   map[guid.GUID]Actor
	at       map[guid.GUID]location.PlaceID
	doors    map[string][]*sensor.DoorSensor
	stations []*sensor.BaseStation
	moves    uint64
}

// Errors.
var (
	ErrUnknownActor = errors.New("mobility: unknown actor")
	ErrNoRoute      = errors.New("mobility: no route to destination")
)

// NewWorld builds a world over the given map.
func NewWorld(places *location.Map) *World {
	return &World{
		places: places,
		actors: make(map[guid.GUID]Actor),
		at:     make(map[guid.GUID]location.PlaceID),
		doors:  make(map[string][]*sensor.DoorSensor),
	}
}

// Places returns the world's map.
func (w *World) Places() *location.Map { return w.places }

// AddActor places an actor at start.
func (w *World) AddActor(a Actor, start location.PlaceID) error {
	if a.ID.IsNil() {
		return errors.New("mobility: actor needs an id")
	}
	if _, ok := w.places.Place(start); !ok {
		return fmt.Errorf("%w: %q", location.ErrUnknownPlace, start)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.actors[a.ID] = a
	w.at[a.ID] = start
	return nil
}

// AttachDoorSensor registers a door sensor to be triggered when badged
// actors cross the named door.
func (w *World) AttachDoorSensor(s *sensor.DoorSensor) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.doors[s.Door()] = append(w.doors[s.Door()], s)
}

// AttachBaseStation registers a base station observing device positions.
func (w *World) AttachBaseStation(s *sensor.BaseStation) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stations = append(w.stations, s)
}

// WhereIs returns an actor's current place.
func (w *World) WhereIs(id guid.GUID) (location.PlaceID, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	p, ok := w.at[id]
	return p, ok
}

// Actors returns all actor ids, sorted.
func (w *World) Actors() []guid.GUID {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]guid.GUID, 0, len(w.actors))
	for id := range w.actors {
		out = append(out, id)
	}
	guid.Sort(out)
	return out
}

// Moves returns the total number of completed place-to-place steps.
func (w *World) Moves() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.moves
}

// Teleport relocates an actor without triggering sensors (scenario setup).
func (w *World) Teleport(id guid.GUID, to location.PlaceID) error {
	if _, ok := w.places.Place(to); !ok {
		return fmt.Errorf("%w: %q", location.ErrUnknownPlace, to)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.actors[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownActor, id.Short())
	}
	w.at[id] = to
	return nil
}

// MoveTo walks an actor along the shortest route to dest, firing door
// sensors at each crossed door (if badged) and offering every visited place
// to the base stations (if carrying a device). It returns the route taken.
func (w *World) MoveTo(id guid.GUID, dest location.PlaceID) (location.Route, error) {
	w.mu.Lock()
	actor, ok := w.actors[id]
	if !ok {
		w.mu.Unlock()
		return location.Route{}, fmt.Errorf("%w: %s", ErrUnknownActor, id.Short())
	}
	from := w.at[id]
	w.mu.Unlock()

	route, err := w.places.ShortestRoute(location.AtPlace(from), location.AtPlace(dest))
	if err != nil {
		return location.Route{}, fmt.Errorf("%w: %v", ErrNoRoute, err)
	}
	for hop := 1; hop < len(route.Places); hop++ {
		entering := route.Places[hop]
		door := route.Doors[hop-1]

		w.mu.Lock()
		w.at[id] = entering
		w.moves++
		var doorSensors []*sensor.DoorSensor
		if door != "" && actor.Badge {
			doorSensors = append(doorSensors, w.doors[door]...)
		}
		stations := make([]*sensor.BaseStation, len(w.stations))
		copy(stations, w.stations)
		w.mu.Unlock()

		for _, s := range doorSensors {
			_ = s.Sight(actor.ID, entering)
		}
		if !actor.Device.IsNil() {
			for _, s := range stations {
				_ = s.Observe(actor.Device, entering)
			}
		}
	}
	return route, nil
}

// Doors returns the registered door names, sorted (diagnostics).
func (w *World) Doors() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.doors))
	for d := range w.doors {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
