package mobility

import (
	"sync"
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/sensor"
)

var epoch = time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)

type capture struct {
	mu  sync.Mutex
	evs []event.Event
}

func (c *capture) Publish(e event.Event) error {
	c.mu.Lock()
	c.evs = append(c.evs, e)
	c.mu.Unlock()
	return nil
}

func (c *capture) byType(t ctxtype.Type) []event.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []event.Event
	for _, e := range c.evs {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

func testWorld(t testing.TB) (*World, *capture, *clock.Manual) {
	t.Helper()
	places := []location.Place{
		{ID: "lobby", Path: "b/f/lobby", Centroid: location.Point{Frame: "F", X: 0, Y: 0}},
		{ID: "corr", Path: "b/f/corr", Centroid: location.Point{Frame: "F", X: 10, Y: 0}},
		{ID: "r1", Path: "b/f/r1", Centroid: location.Point{Frame: "F", X: 20, Y: 0}},
		{ID: "r2", Path: "b/f/r2", Centroid: location.Point{Frame: "F", X: 30, Y: 0}},
	}
	links := []location.Link{
		{A: "lobby", B: "corr", Door: "d-lobby"},
		{A: "corr", B: "r1", Door: "d-r1"},
		{A: "corr", B: "r2", Door: "d-r2"},
	}
	m, err := location.NewMap(places, links)
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewManual(epoch)
	w := NewWorld(m)
	var pub capture
	for _, d := range []struct {
		name  string
		place location.PlaceID
	}{{"d-lobby", "corr"}, {"d-r1", "r1"}, {"d-r2", "r2"}} {
		s := sensor.NewDoorSensor(d.name, location.AtPlace(d.place), clk)
		s.Attach(&pub)
		w.AttachDoorSensor(s)
	}
	bs := sensor.NewBaseStation("lobby-cell", []location.PlaceID{"lobby", "corr"}, location.AtPlace("lobby"), clk)
	bs.Attach(&pub)
	w.AttachBaseStation(bs)
	return w, &pub, clk
}

func TestAddActorValidation(t *testing.T) {
	w, _, _ := testWorld(t)
	if err := w.AddActor(Actor{}, "lobby"); err == nil {
		t.Fatal("actor without id accepted")
	}
	bob := Actor{ID: guid.New(guid.KindPerson), Name: "bob", Badge: true}
	if err := w.AddActor(bob, "nowhere"); err == nil {
		t.Fatal("unknown start accepted")
	}
	if err := w.AddActor(bob, "lobby"); err != nil {
		t.Fatal(err)
	}
	if p, ok := w.WhereIs(bob.ID); !ok || p != "lobby" {
		t.Fatal("start place wrong")
	}
	if len(w.Actors()) != 1 {
		t.Fatal("actor count wrong")
	}
}

func TestMoveTriggersDoorSensors(t *testing.T) {
	w, pub, _ := testWorld(t)
	bob := Actor{ID: guid.New(guid.KindPerson), Name: "bob", Badge: true}
	if err := w.AddActor(bob, "lobby"); err != nil {
		t.Fatal(err)
	}
	route, err := w.MoveTo(bob.ID, "r1")
	if err != nil {
		t.Fatal(err)
	}
	if route.Hops() != 2 {
		t.Fatalf("route hops = %d", route.Hops())
	}
	if p, _ := w.WhereIs(bob.ID); p != "r1" {
		t.Fatal("actor did not arrive")
	}
	sightings := pub.byType(ctxtype.LocationSightingDoor)
	if len(sightings) != 2 {
		t.Fatalf("door sightings = %d, want 2 (d-lobby, d-r1)", len(sightings))
	}
	for _, e := range sightings {
		if e.Subject != bob.ID {
			t.Fatal("sighting subject wrong")
		}
	}
	// The sighted places trace the route.
	if p, _ := sightings[0].Str("place"); p != "corr" {
		t.Fatalf("first sighting place = %s", p)
	}
	if p, _ := sightings[1].Str("place"); p != "r1" {
		t.Fatalf("second sighting place = %s", p)
	}
	if w.Moves() != 2 {
		t.Fatal("move counter wrong")
	}
}

func TestUnbadgedActorInvisibleToDoors(t *testing.T) {
	w, pub, _ := testWorld(t)
	ghost := Actor{ID: guid.New(guid.KindPerson), Name: "ghost", Badge: false}
	if err := w.AddActor(ghost, "lobby"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.MoveTo(ghost.ID, "r1"); err != nil {
		t.Fatal(err)
	}
	if len(pub.byType(ctxtype.LocationSightingDoor)) != 0 {
		t.Fatal("unbadged actor sighted")
	}
}

func TestDeviceSeenByBaseStation(t *testing.T) {
	w, pub, _ := testWorld(t)
	dev := guid.New(guid.KindDevice)
	bob := Actor{ID: guid.New(guid.KindPerson), Name: "bob", Badge: false, Device: dev}
	if err := w.AddActor(bob, "r1"); err != nil {
		t.Fatal(err)
	}
	// r1 → lobby passes through corr (in cell) then lobby (in cell).
	if _, err := w.MoveTo(bob.ID, "lobby"); err != nil {
		t.Fatal(err)
	}
	wlan := pub.byType(ctxtype.LocationSightingWLAN)
	if len(wlan) != 2 {
		t.Fatalf("wlan sightings = %d, want 2", len(wlan))
	}
	if wlan[0].Subject != dev {
		t.Fatal("wlan subject should be the device")
	}
	// Leaving the cell: r1 is outside → departure event.
	if _, err := w.MoveTo(bob.ID, "r1"); err != nil {
		t.Fatal(err)
	}
	wlan = pub.byType(ctxtype.LocationSightingWLAN)
	last := wlan[len(wlan)-1]
	if left, _ := last.Payload["left"].(bool); !left {
		t.Fatalf("expected departure event, got %+v", last)
	}
}

func TestTeleportSilent(t *testing.T) {
	w, pub, _ := testWorld(t)
	bob := Actor{ID: guid.New(guid.KindPerson), Name: "bob", Badge: true}
	if err := w.AddActor(bob, "lobby"); err != nil {
		t.Fatal(err)
	}
	if err := w.Teleport(bob.ID, "r2"); err != nil {
		t.Fatal(err)
	}
	if p, _ := w.WhereIs(bob.ID); p != "r2" {
		t.Fatal("teleport failed")
	}
	if len(pub.byType(ctxtype.LocationSightingDoor)) != 0 {
		t.Fatal("teleport triggered sensors")
	}
	if err := w.Teleport(guid.New(guid.KindPerson), "r1"); err == nil {
		t.Fatal("teleport of unknown actor accepted")
	}
	if err := w.Teleport(bob.ID, "nowhere"); err == nil {
		t.Fatal("teleport to unknown place accepted")
	}
}

func TestMoveErrors(t *testing.T) {
	w, _, _ := testWorld(t)
	if _, err := w.MoveTo(guid.New(guid.KindPerson), "r1"); err == nil {
		t.Fatal("move of unknown actor accepted")
	}
	if len(w.Doors()) != 3 {
		t.Fatalf("doors = %v", w.Doors())
	}
}
