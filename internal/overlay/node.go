package overlay

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"sci/internal/clock"
	"sci/internal/guid"
	"sci/internal/metrics"
	"sci/internal/transport"
	"sci/internal/wire"
)

// Delivery is a routed application payload arriving at its destination.
type Delivery struct {
	// Target is the GUID the message was routed to.
	Target guid.GUID
	// Origin is the node that injected the message.
	Origin guid.GUID
	// AppKind discriminates application payloads (query, event, ...).
	AppKind string
	// Payload is the opaque application body.
	Payload json.RawMessage
	// Batch carries the native event batch when the payload was routed with
	// RouteBatch and every hop spoke a batch-aware codec. Consumers must
	// treat it as shared and read-only: the same pointer may fan out to
	// several local deliveries.
	Batch *wire.NativeBatch
	// Hops is the number of overlay forwards taken.
	Hops int
}

// DeliverFunc consumes routed payloads at their destination.
type DeliverFunc func(Delivery)

// Router is the interface common to the structured overlay Node and the
// hierarchical Tree baseline, so experiment E1 can drive both identically.
type Router interface {
	// ID returns the node identifier.
	ID() guid.GUID
	// Route forwards an application payload toward target.
	Route(target guid.GUID, appKind string, payload []byte) error
	// Relayed returns how many messages this node has forwarded on behalf
	// of others — the per-node load measure for the bottleneck experiment.
	Relayed() uint64
	// Close detaches the node.
	Close() error
}

// Config parameterises a Node.
type Config struct {
	// ID is the node's GUID; a fresh KindServer GUID is generated when nil.
	ID guid.GUID
	// Network attaches the node; required.
	Network transport.Network
	// Clock drives heartbeats; defaults to the real clock.
	Clock clock.Clock
	// HeartbeatEvery is the liveness probe period; 0 disables probing
	// (simulation runs that don't exercise failure keep this off).
	HeartbeatEvery time.Duration
	// FailAfter declares a neighbour dead when no pong arrives within this
	// window; defaults to 3×HeartbeatEvery.
	FailAfter time.Duration
	// Deliver receives routed payloads addressed to (or closest to) this
	// node. May be nil for pure relay nodes.
	Deliver DeliverFunc
	// Forgot is invoked whenever the node drops a peer from its routing
	// structures — a heartbeat went unanswered past FailAfter, or a send to
	// the peer failed. Upper layers (the SCINET fabric) use it to tear down
	// per-peer state such as remote-query proxies. Called synchronously with
	// no node locks held; may be nil.
	Forgot func(guid.GUID)
	// MaxTTL bounds forwarding; defaults to guid.Digits+8.
	MaxTTL int
}

// Node is a structured-overlay SCINET node.
type Node struct {
	cfg    Config
	id     guid.GUID
	st     *state
	ep     transport.Endpoint
	clk    clock.Clock
	maxTTL int

	mu           sync.Mutex
	waiters      map[guid.GUID]chan wire.Message // correlation → reply slot
	announceWait map[guid.GUID]chan struct{}     // correlation → announce ack slot
	pinged       map[guid.GUID]time.Time         // outstanding pings
	closed       bool

	hb clock.Timer

	relayed   metrics.Counter
	delivered metrics.Counter
	// RouteHops records hop counts observed at delivery (experiment E1).
	RouteHops metrics.Histogram
}

// Body types for overlay control messages.
type joinBody struct {
	Joiner guid.GUID   `json:"joiner"`
	Nodes  []guid.GUID `json:"nodes"` // knowledge accumulated along the path (bounded)
	// Leaves is filled only on the reply: the complete leaf set of the
	// closest existing node. It is carried separately from Nodes so that
	// path accumulation can never crowd it out — the joiner's own leaf-set
	// accuracy (and hence routing correctness) depends on receiving it
	// whole.
	Leaves []guid.GUID `json:"leaves,omitempty"`
}

type routeBody struct {
	Target  guid.GUID       `json:"target"`
	Origin  guid.GUID       `json:"origin"`
	AppKind string          `json:"app_kind"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Hops    int             `json:"hops"`
}

type gossipBody struct {
	Nodes []guid.GUID `json:"nodes"`
}

// Errors.
var (
	ErrClosed      = errors.New("overlay: node closed")
	ErrJoinTimeout = errors.New("overlay: join timed out")
	ErrNoRoute     = errors.New("overlay: no route to target")
)

// joinTimeout bounds how long Join waits for the network's reply.
const joinTimeout = 5 * time.Second

// maxCarriedNodes bounds the knowledge piggybacked on join/gossip bodies.
const maxCarriedNodes = 64

// NewNode attaches a node to the network. The node is a one-node overlay
// until Join is called (the first node of a SCINET simply never joins).
func NewNode(cfg Config) (*Node, error) {
	if cfg.Network == nil {
		return nil, errors.New("overlay: Config.Network is required")
	}
	if cfg.ID.IsNil() {
		cfg.ID = guid.New(guid.KindServer)
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.FailAfter == 0 {
		cfg.FailAfter = 3 * cfg.HeartbeatEvery
	}
	if cfg.MaxTTL == 0 {
		cfg.MaxTTL = guid.Digits + 8
	}
	n := &Node{
		cfg:          cfg,
		id:           cfg.ID,
		st:           newState(cfg.ID),
		clk:          cfg.Clock,
		maxTTL:       cfg.MaxTTL,
		waiters:      make(map[guid.GUID]chan wire.Message),
		announceWait: make(map[guid.GUID]chan struct{}),
		pinged:       make(map[guid.GUID]time.Time),
	}
	ep, err := cfg.Network.Attach(n.id, n.handle)
	if err != nil {
		return nil, fmt.Errorf("overlay: attach: %w", err)
	}
	n.ep = ep
	if cfg.HeartbeatEvery > 0 {
		n.scheduleHeartbeat()
	}
	return n, nil
}

// ID implements Router.
func (n *Node) ID() guid.GUID { return n.id }

// Relayed implements Router.
func (n *Node) Relayed() uint64 { return n.relayed.Value() }

// Delivered returns how many payloads terminated here.
func (n *Node) Delivered() uint64 { return n.delivered.Value() }

// Known returns the sorted ids of all nodes in the routing structures.
func (n *Node) Known() []guid.GUID { return n.st.known() }

// Join bootstraps the node into the overlay reachable via the bootstrap
// node. It routes a join request toward this node's own id; every node on
// the path contributes routing knowledge, and the numerically closest node
// replies with the accumulated set. The joiner then announces itself to all
// learned nodes.
func (n *Node) Join(bootstrap guid.GUID) error {
	if bootstrap == n.id {
		return errors.New("overlay: cannot bootstrap from self")
	}
	corr := guid.New(guid.KindQuery)
	replyCh := make(chan wire.Message, 1)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.waiters[corr] = replyCh
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.waiters, corr)
		n.mu.Unlock()
	}()

	body := joinBody{Joiner: n.id, Nodes: []guid.GUID{bootstrap}}
	m, err := wire.NewMessage(n.id, bootstrap, wire.KindOverlayJoin, body)
	if err != nil {
		return err
	}
	m.Corr = corr
	m.TTL = n.maxTTL
	if err := n.ep.Send(m); err != nil {
		return fmt.Errorf("overlay: join send: %w", err)
	}

	select {
	case reply := <-replyCh:
		var jb joinBody
		if err := reply.DecodeBody(&jb); err != nil {
			return err
		}
		for _, id := range jb.Nodes {
			n.st.consider(id)
		}
		for _, id := range jb.Leaves {
			n.st.consider(id)
		}
		n.st.consider(reply.Src)
		n.announce()
		return nil
	case <-n.clk.After(joinTimeout):
		return ErrJoinTimeout
	}
}

// announce tells every known node about this node's existence, then waits
// for their acknowledgements (pongs). Waiting matters: a node whose join
// completes has been integrated into its ring neighbours' leaf sets, so a
// subsequent join routed anywhere in the overlay will find it. Without the
// wait, back-to-back joins of ring-adjacent nodes could miss each other
// permanently (until gossip heals them).
func (n *Node) announce() {
	nodes := []guid.GUID{n.id}
	peers := n.st.known()
	waitCh := make(chan struct{}, len(peers))
	var corrs []guid.GUID
	for _, peer := range peers {
		m, err := wire.NewMessage(n.id, peer, wire.KindOverlayPing, gossipBody{Nodes: nodes})
		if err != nil {
			continue
		}
		corr := guid.New(guid.KindQuery)
		m.Corr = corr
		n.mu.Lock()
		n.announceWait[corr] = waitCh
		n.mu.Unlock()
		corrs = append(corrs, corr)
		if err := n.ep.Send(m); err != nil {
			n.mu.Lock()
			delete(n.announceWait, corr)
			n.mu.Unlock()
			corrs = corrs[:len(corrs)-1]
		}
	}
	deadline := n.clk.After(joinTimeout)
	for range corrs {
		select {
		case <-waitCh:
		case <-deadline:
			// Unacknowledged peers will learn of us through gossip.
			goto cleanup
		}
	}
cleanup:
	n.mu.Lock()
	for _, corr := range corrs {
		delete(n.announceWait, corr)
	}
	n.mu.Unlock()
}

// forget drops a peer from the routing structures and notifies the Forgot
// hook (peer-departure propagation to the application layer).
func (n *Node) forget(id guid.GUID) {
	n.st.forget(id)
	if n.cfg.Forgot != nil {
		n.cfg.Forgot(id)
	}
}

// Route implements Router. The payload travels greedily toward target; it
// is delivered at target itself, or at the closest reachable node when the
// target is unknown (key-based routing semantics).
func (n *Node) Route(target guid.GUID, appKind string, payload []byte) error {
	return n.RouteBatch(target, appKind, payload, nil)
}

// RouteBatch routes an application payload accompanied by a native event
// batch. The batch rides the envelope, not the JSON payload: batch-aware
// codecs ship (or pass through) it natively, and legacy hops fold it into
// the payload via the folder registered for appKind with
// RegisterAppBatchFolder. The batch is shared from this call on — neither
// the caller nor any consumer may mutate it.
func (n *Node) RouteBatch(target guid.GUID, appKind string, payload []byte, batch *wire.NativeBatch) error {
	body := routeBody{
		Target:  target,
		Origin:  n.id,
		AppKind: appKind,
		Payload: payload,
		Hops:    0,
	}
	return n.forward(body, batch)
}

// forward advances a route body one step from this node.
func (n *Node) forward(body routeBody, batch *wire.NativeBatch) error {
	if body.Target == n.id {
		n.deliverLocal(body, batch)
		return nil
	}
	hop := n.st.nextHop(body.Target)
	if hop.IsNil() {
		// No strictly closer node known: deliver here (closest node).
		n.deliverLocal(body, batch)
		return nil
	}
	if body.Hops >= n.maxTTL {
		return fmt.Errorf("%w: TTL exhausted for %s", ErrNoRoute, body.Target.Short())
	}
	body.Hops++
	m, err := wire.NewMessage(n.id, hop, wire.KindOverlayRoute, body)
	if err != nil {
		return err
	}
	m.TTL = n.maxTTL - body.Hops
	m.Batch = batch
	if err := n.ep.Send(m); err != nil {
		// The hop is unreachable: drop it from our tables and retry once
		// with the next best candidate (self-healing routing).
		n.forget(hop)
		if retry := n.st.nextHop(body.Target); !retry.IsNil() {
			m.Dst = retry
			if err2 := n.ep.Send(m); err2 == nil {
				return nil
			}
			n.forget(retry)
		}
		n.deliverLocal(body, batch)
		return nil
	}
	return nil
}

func (n *Node) deliverLocal(body routeBody, batch *wire.NativeBatch) {
	n.delivered.Inc()
	n.RouteHops.Record(int64(body.Hops))
	if n.cfg.Deliver != nil {
		n.cfg.Deliver(Delivery{
			Target:  body.Target,
			Origin:  body.Origin,
			AppKind: body.AppKind,
			Payload: body.Payload,
			Batch:   batch,
			Hops:    body.Hops,
		})
	}
}

// handle is the transport inbound dispatcher.
func (n *Node) handle(m wire.Message) {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return
	}
	// Every message is evidence its sender is alive and routable.
	n.st.consider(m.Src)

	switch m.Kind {
	case wire.KindOverlayJoin:
		n.handleJoin(m)
	case wire.KindOverlayJoinReply:
		n.mu.Lock()
		ch, ok := n.waiters[m.Corr]
		n.mu.Unlock()
		if ok {
			select {
			case ch <- m:
			default:
			}
		}
	case wire.KindOverlayRoute:
		var body routeBody
		if err := m.DecodeBody(&body); err != nil {
			return
		}
		if body.Target != n.id {
			n.relayed.Inc()
		}
		_ = n.forward(body, m.Batch)
	case wire.KindOverlayPing:
		var gb gossipBody
		if err := m.DecodeBody(&gb); err == nil {
			for _, id := range gb.Nodes {
				n.st.consider(id)
			}
		}
		// Pong carries a sample of our knowledge back (anti-entropy).
		reply, err := m.Reply(wire.KindOverlayPong, gossipBody{Nodes: n.sampleKnown()})
		if err == nil {
			_ = n.ep.Send(reply)
		}
	case wire.KindOverlayPong:
		n.mu.Lock()
		delete(n.pinged, m.Src)
		ack, waiting := n.announceWait[m.Corr]
		if waiting {
			delete(n.announceWait, m.Corr)
		}
		n.mu.Unlock()
		if waiting {
			select {
			case ack <- struct{}{}:
			default:
			}
		}
		var gb gossipBody
		if err := m.DecodeBody(&gb); err == nil {
			for _, id := range gb.Nodes {
				n.st.consider(id)
			}
		}
	}
}

// handleJoin advances a join request toward the joiner's id, accumulating
// knowledge, and replies when this node is the closest.
func (n *Node) handleJoin(m wire.Message) {
	var jb joinBody
	if err := m.DecodeBody(&jb); err != nil {
		return
	}
	// Contribute this node's knowledge (bounded).
	jb.Nodes = appendBounded(jb.Nodes, n.id)
	for _, id := range n.sampleKnown() {
		jb.Nodes = appendBounded(jb.Nodes, id)
	}

	// Pick the next hop excluding the joiner itself: handling this request
	// (and the top-of-handle sender ingestion) has already put the joiner
	// into our tables, but the question the join protocol asks is "who was
	// ring-closest to this id before it existed?" — that node's leaf set is
	// what seeds the joiner correctly, so routing must continue until it.
	hop := n.st.nextHopAvoiding(jb.Joiner, jb.Joiner)
	n.st.consider(jb.Joiner)
	if hop.IsNil() || m.TTL <= 0 {
		// This node is the closest existing node. Its leaf set contains the
		// joiner's true ring neighbours; hand it over complete so the
		// joiner's own leaf set starts accurate.
		jb.Leaves = append(n.st.leafList(), n.id)
		reply, err := wire.NewMessage(n.id, jb.Joiner, wire.KindOverlayJoinReply, jb)
		if err != nil {
			return
		}
		reply.Corr = m.Corr
		_ = n.ep.Send(reply)
		return
	}
	fwd, err := wire.NewMessage(n.id, hop, wire.KindOverlayJoin, jb)
	if err != nil {
		return
	}
	fwd.Corr = m.Corr
	fwd.TTL = m.TTL - 1
	if err := n.ep.Send(fwd); err != nil {
		n.forget(hop)
		// Fall back to replying ourselves.
		reply, rerr := wire.NewMessage(n.id, jb.Joiner, wire.KindOverlayJoinReply, jb)
		if rerr != nil {
			return
		}
		reply.Corr = m.Corr
		_ = n.ep.Send(reply)
	}
}

// sampleKnown returns a bounded sample of known nodes for gossip bodies.
func (n *Node) sampleKnown() []guid.GUID {
	known := n.st.known()
	if len(known) > maxCarriedNodes {
		known = known[:maxCarriedNodes]
	}
	return known
}

func appendBounded(list []guid.GUID, id guid.GUID) []guid.GUID {
	if len(list) >= maxCarriedNodes {
		return list
	}
	for _, x := range list {
		if x == id {
			return list
		}
	}
	return append(list, id)
}

// scheduleHeartbeat arms the next liveness probe round.
func (n *Node) scheduleHeartbeat() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.hb = n.clk.AfterFunc(n.cfg.HeartbeatEvery, n.heartbeat)
}

// heartbeat pings the neighbour set and expires unanswered pings.
func (n *Node) heartbeat() {
	now := n.clk.Now()

	// Expire overdue pings: declare those nodes failed.
	n.mu.Lock()
	var dead []guid.GUID
	for id, sent := range n.pinged {
		if now.Sub(sent) >= n.cfg.FailAfter {
			dead = append(dead, id)
			delete(n.pinged, id)
		}
	}
	n.mu.Unlock()
	for _, id := range dead {
		n.forget(id)
	}

	// Ping current neighbours.
	for _, peer := range n.st.leafList() {
		n.mu.Lock()
		if _, outstanding := n.pinged[peer]; !outstanding {
			n.pinged[peer] = now
		}
		n.mu.Unlock()
		m, err := wire.NewMessage(n.id, peer, wire.KindOverlayPing, gossipBody{Nodes: n.sampleKnown()})
		if err != nil {
			continue
		}
		if err := n.ep.Send(m); err != nil {
			n.forget(peer)
			n.mu.Lock()
			delete(n.pinged, peer)
			n.mu.Unlock()
		}
	}
	n.scheduleHeartbeat()
}

// Close implements Router.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	if n.hb != nil {
		n.hb.Stop()
	}
	n.mu.Unlock()
	return n.ep.Close()
}

var _ Router = (*Node)(nil)
