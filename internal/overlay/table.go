// Package overlay implements the SCINET substrate: "a network overlay of
// partially connected nodes" (paper, Section 3) in which Ranges address one
// another by GUID rather than network address.
//
// The paper argues that "routing through an overlay network avoids any
// bottlenecks created when using hierarchical infrastructures whilst
// achieving comparable performance". To reproduce that claim (experiment
// E1) this package provides both contenders:
//
//   - Node: a structured overlay node in the 2003 Pastry/Tapestry style the
//     paper's citation [9] builds on — a hexadecimal prefix routing table
//     for long-range shortcuts plus a ring-ordered leaf set for guaranteed
//     convergence, greedy strictly-ring-distance-decreasing forwarding,
//     heartbeat failure detection and gossip repair.
//   - Tree: the hierarchical baseline, routing every inter-range message
//     through the lowest common ancestor (and therefore concentrating load
//     near the root).
//
// Both satisfy Router so the benchmark harness can drive them identically.
package overlay

import (
	"sync"

	"sci/internal/guid"
)

// tableRows × tableCols is the classic prefix routing table geometry: row r
// holds nodes sharing exactly r leading digits with self, indexed by their
// (r+1)-th digit.
const (
	tableRows = guid.Digits
	tableCols = 16
)

// leafK is the number of ring neighbours kept on each side (predecessors
// and successors). Accurate immediate neighbours are what make greedy ring
// routing provably deliver to live targets; keeping several per side gives
// slack under churn.
const leafK = 4

// state holds a node's routing knowledge. It is guarded by its own mutex so
// the message handler, the heartbeat loop and application Route calls can
// share it.
type state struct {
	self guid.GUID

	mu    sync.RWMutex
	table [tableRows][tableCols]guid.GUID
	// preds are the leafK closest predecessors (smallest CWDist(x, self)),
	// sorted closest-first; succs are the leafK closest successors
	// (smallest CWDist(self, x)), sorted closest-first.
	preds []guid.GUID
	succs []guid.GUID
}

func newState(self guid.GUID) *state {
	return &state{self: self}
}

// consider ingests a candidate node id into the routing table and the leaf
// set. It reports whether the id was new knowledge anywhere.
func (s *state) consider(id guid.GUID) bool {
	if id == s.self || id.IsNil() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	added := false

	// Routing table: row = shared prefix length, column = next digit.
	row := guid.CommonPrefixLen(s.self, id)
	if row < tableRows {
		col := id.Digit(row)
		if s.table[row][col].IsNil() {
			s.table[row][col] = id
			added = true
		}
	}

	if insertLeaf(&s.succs, id, func(a, b guid.GUID) bool {
		return guid.Compare(guid.CWDist(s.self, a), guid.CWDist(s.self, b)) < 0
	}) {
		added = true
	}
	if insertLeaf(&s.preds, id, func(a, b guid.GUID) bool {
		return guid.Compare(guid.CWDist(a, s.self), guid.CWDist(b, s.self)) < 0
	}) {
		added = true
	}
	return added
}

// insertLeaf inserts id into the sorted bounded list unless present,
// keeping the leafK closest under less. Reports whether id was inserted.
func insertLeaf(list *[]guid.GUID, id guid.GUID, less func(a, b guid.GUID) bool) bool {
	l := *list
	pos := len(l)
	for i, n := range l {
		if n == id {
			return false
		}
		if pos == len(l) && less(id, n) {
			pos = i
		}
	}
	if pos == len(l) {
		if len(l) < leafK {
			*list = append(l, id)
			return true
		}
		return false
	}
	l = append(l, guid.Nil)
	copy(l[pos+1:], l[pos:])
	l[pos] = id
	if len(l) > leafK {
		l = l[:leafK]
	}
	*list = l
	return true
}

// forget removes a failed node from all routing structures.
func (s *state) forget(id guid.GUID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	row := guid.CommonPrefixLen(s.self, id)
	if row < tableRows {
		col := id.Digit(row)
		if s.table[row][col] == id {
			s.table[row][col] = guid.Nil
		}
	}
	for _, list := range []*[]guid.GUID{&s.preds, &s.succs} {
		l := *list
		for i, n := range l {
			if n == id {
				*list = append(l[:i], l[i+1:]...)
				break
			}
		}
	}
}

// nextHop picks the known node to forward a message for target to: the
// known node strictly ring-closest to the target. It returns guid.Nil when
// no known node is strictly closer than self — i.e. the message should be
// delivered locally. Because every hop is strictly ring-closer, routing
// always terminates; because leaf sets hold accurate immediate neighbours,
// a live target is always reached (the node preceding it on the ring knows
// it and the target itself is distance zero).
func (s *state) nextHop(target guid.GUID) guid.GUID {
	return s.nextHopAvoiding(target, guid.Nil)
}

// nextHopAvoiding is nextHop with one candidate excluded. The join protocol
// uses it to ask "who was ring-closest to this id before the id existed?":
// the joiner itself must not count, even though handling its request has
// already ingested it into the tables.
func (s *state) nextHopAvoiding(target, avoid guid.GUID) guid.GUID {
	s.mu.RLock()
	defer s.mu.RUnlock()

	best := s.self
	improve := func(c guid.GUID) {
		if !c.IsNil() && c != avoid && guid.RingCloserTo(target, c, best) {
			best = c
		}
	}
	for _, n := range s.succs {
		improve(n)
	}
	for _, n := range s.preds {
		improve(n)
	}
	for r := range s.table {
		for c := range s.table[r] {
			improve(s.table[r][c])
		}
	}
	if best == s.self {
		return guid.Nil
	}
	return best
}

// known returns every distinct node id in the routing structures, sorted.
func (s *state) known() []guid.GUID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := guid.NewSet()
	for _, n := range s.succs {
		set.Add(n)
	}
	for _, n := range s.preds {
		set.Add(n)
	}
	for r := range s.table {
		for c := range s.table[r] {
			if id := s.table[r][c]; !id.IsNil() {
				set.Add(id)
			}
		}
	}
	return set.Members()
}

// leafList returns the leaf set (both sides, deduplicated) — the nodes the
// heartbeat loop probes, since their accuracy is what routing correctness
// rests on.
func (s *state) leafList() []guid.GUID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := guid.NewSet()
	for _, n := range s.succs {
		set.Add(n)
	}
	for _, n := range s.preds {
		set.Add(n)
	}
	return set.Members()
}
