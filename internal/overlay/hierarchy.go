package overlay

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"sci/internal/guid"
	"sci/internal/metrics"
	"sci/internal/transport"
	"sci/internal/wire"
)

// TreeNode is one node of the hierarchical routing baseline that the paper
// contrasts the SCINET against (Section 3): messages between subtrees must
// climb to the lowest common ancestor, so nodes near the root relay a
// disproportionate share of the traffic. Experiment E1 measures exactly
// that concentration.
type TreeNode struct {
	id      guid.GUID
	parent  guid.GUID // nil at the root
	ep      transport.Endpoint
	deliver DeliverFunc

	mu       sync.RWMutex
	children map[guid.GUID]guid.Set // child id → set of ids in that child's subtree (incl. child)
	closed   bool

	relayed   metrics.Counter
	delivered metrics.Counter
	// RouteHops records hop counts observed at delivery.
	RouteHops metrics.Histogram
}

type treeRouteBody struct {
	Target  guid.GUID       `json:"target"`
	Origin  guid.GUID       `json:"origin"`
	AppKind string          `json:"app_kind"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Hops    int             `json:"hops"`
}

// Tree wires a set of TreeNodes into a fixed hierarchy. Construct with
// BuildTree.
type Tree struct {
	Root  *TreeNode
	Nodes map[guid.GUID]*TreeNode
}

// BuildTree constructs a balanced tree with the given branching factor over
// the supplied ids (ids[0] becomes the root), attaching every node to net.
// Routing state (subtree membership) is precomputed: the baseline gets the
// benefit of perfect knowledge, making E1's comparison conservative.
func BuildTree(net transport.Network, ids []guid.GUID, branching int, deliver func(guid.GUID, Delivery)) (*Tree, error) {
	if len(ids) == 0 {
		return nil, errors.New("overlay: BuildTree needs at least one id")
	}
	if branching < 2 {
		branching = 2
	}
	t := &Tree{Nodes: make(map[guid.GUID]*TreeNode, len(ids))}

	// parentIdx of node i in a complete k-ary tree laid out in level order.
	parentIdx := func(i int) int { return (i - 1) / branching }

	for i, id := range ids {
		node := &TreeNode{
			id:       id,
			children: make(map[guid.GUID]guid.Set),
		}
		if i > 0 {
			node.parent = ids[parentIdx(i)]
		}
		if deliver != nil {
			nodeID := id
			node.deliver = func(d Delivery) { deliver(nodeID, d) }
		}
		ep, err := net.Attach(id, node.handle)
		if err != nil {
			return nil, fmt.Errorf("overlay: tree attach %s: %w", id.Short(), err)
		}
		node.ep = ep
		t.Nodes[id] = node
	}
	t.Root = t.Nodes[ids[0]]

	// Precompute subtree membership bottom-up.
	for i := len(ids) - 1; i >= 1; i-- {
		child := ids[i]
		parent := t.Nodes[ids[parentIdx(i)]]
		// The child's subtree is itself plus all its children's subtrees.
		sub := guid.NewSet(child)
		for _, s := range t.Nodes[child].children {
			for _, m := range s.Members() {
				sub.Add(m)
			}
		}
		parent.children[child] = sub
	}
	return t, nil
}

// Close detaches every node.
func (t *Tree) Close() error {
	var first error
	for _, n := range t.Nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ID implements Router.
func (n *TreeNode) ID() guid.GUID { return n.id }

// Relayed implements Router.
func (n *TreeNode) Relayed() uint64 { return n.relayed.Value() }

// Delivered returns how many payloads terminated here.
func (n *TreeNode) Delivered() uint64 { return n.delivered.Value() }

// Route implements Router.
func (n *TreeNode) Route(target guid.GUID, appKind string, payload []byte) error {
	return n.forward(treeRouteBody{
		Target:  target,
		Origin:  n.id,
		AppKind: appKind,
		Payload: payload,
	})
}

func (n *TreeNode) forward(body treeRouteBody) error {
	if body.Target == n.id {
		n.delivered.Inc()
		n.RouteHops.Record(int64(body.Hops))
		if n.deliver != nil {
			n.deliver(Delivery{
				Target:  body.Target,
				Origin:  body.Origin,
				AppKind: body.AppKind,
				Payload: body.Payload,
				Hops:    body.Hops,
			})
		}
		return nil
	}
	next := n.nextHop(body.Target)
	if next.IsNil() {
		return fmt.Errorf("%w: %s not in tree", ErrNoRoute, body.Target.Short())
	}
	body.Hops++
	m, err := wire.NewMessage(n.id, next, wire.KindOverlayRoute, body)
	if err != nil {
		return err
	}
	if err := n.ep.Send(m); err != nil {
		return fmt.Errorf("overlay: tree send: %w", err)
	}
	return nil
}

// nextHop routes down into the child subtree containing target, else up.
func (n *TreeNode) nextHop(target guid.GUID) guid.GUID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for child, subtree := range n.children {
		if subtree.Has(target) {
			return child
		}
	}
	return n.parent // nil at the root for unknown targets
}

func (n *TreeNode) handle(m wire.Message) {
	n.mu.RLock()
	closed := n.closed
	n.mu.RUnlock()
	if closed || m.Kind != wire.KindOverlayRoute {
		return
	}
	var body treeRouteBody
	if err := m.DecodeBody(&body); err != nil {
		return
	}
	if body.Target != n.id {
		n.relayed.Inc()
	}
	_ = n.forward(body)
}

// Close implements Router.
func (n *TreeNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	return n.ep.Close()
}

var _ Router = (*TreeNode)(nil)
