package overlay

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"sci/internal/guid"
	"sci/internal/metrics"
	"sci/internal/transport"
	"sci/internal/wire"
)

// TreeNode is one node of the hierarchical routing baseline that the paper
// contrasts the SCINET against (Section 3): messages between subtrees must
// climb to the lowest common ancestor, so nodes near the root relay a
// disproportionate share of the traffic. Experiment E1 measures exactly
// that concentration.
//
// The same tree shape also powers live routing now: PlanTree computes the
// per-node attachment spec (parent, children, level mates) that the SCINET
// fabric hierarchy (scinet.HierarchyConfig) wires into super-peer digest
// routing, so the Section-3 topology and the grid-scale interest hierarchy
// cannot drift apart.
type TreeNode struct {
	id      guid.GUID
	parent  guid.GUID // nil at the root
	ep      transport.Endpoint
	deliver DeliverFunc

	mu       sync.RWMutex
	children map[guid.GUID]guid.Set // child id → set of ids in that child's subtree (incl. child)
	closed   bool

	relayed   metrics.Counter
	delivered metrics.Counter
	// RouteHops records hop counts observed at delivery.
	RouteHops metrics.Histogram
}

type treeRouteBody struct {
	Target  guid.GUID       `json:"target"`
	Origin  guid.GUID       `json:"origin"`
	AppKind string          `json:"app_kind"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Hops    int             `json:"hops"`
}

// Tree wires a set of TreeNodes into a fixed hierarchy. Construct with
// BuildTree.
type Tree struct {
	Root  *TreeNode
	Nodes map[guid.GUID]*TreeNode
}

// BuildTree constructs a balanced tree with the given branching factor over
// the supplied ids (ids[0] becomes the root), attaching every node to net.
// Routing state (subtree membership) is precomputed: the baseline gets the
// benefit of perfect knowledge, making E1's comparison conservative.
func BuildTree(net transport.Network, ids []guid.GUID, branching int, deliver func(guid.GUID, Delivery)) (*Tree, error) {
	if len(ids) == 0 {
		return nil, errors.New("overlay: BuildTree needs at least one id")
	}
	if branching < 2 {
		branching = 2
	}
	t := &Tree{Nodes: make(map[guid.GUID]*TreeNode, len(ids))}

	// parentIdx of node i in a complete k-ary tree laid out in level order.
	parentIdx := func(i int) int { return (i - 1) / branching }

	for i, id := range ids {
		node := &TreeNode{
			id:       id,
			children: make(map[guid.GUID]guid.Set),
		}
		if i > 0 {
			node.parent = ids[parentIdx(i)]
		}
		if deliver != nil {
			nodeID := id
			node.deliver = func(d Delivery) { deliver(nodeID, d) }
		}
		ep, err := net.Attach(id, node.handle)
		if err != nil {
			return nil, fmt.Errorf("overlay: tree attach %s: %w", id.Short(), err)
		}
		node.ep = ep
		t.Nodes[id] = node
	}
	t.Root = t.Nodes[ids[0]]

	// Precompute subtree membership bottom-up.
	for i := len(ids) - 1; i >= 1; i-- {
		child := ids[i]
		parent := t.Nodes[ids[parentIdx(i)]]
		// The child's subtree is itself plus all its children's subtrees.
		sub := guid.NewSet(child)
		for _, s := range t.Nodes[child].children {
			for _, m := range s.Members() {
				sub.Add(m)
			}
		}
		parent.children[child] = sub
	}
	return t, nil
}

// TreeSpec is one node's place in a planned hierarchy: who it attaches to,
// which nodes attach to it, and which nodes share its parent (its level
// mates — the peers a super-peer exchanges level-wise digests with when the
// plan is a forest of roots).
type TreeSpec struct {
	// Parent is the node's super-peer (nil at a root).
	Parent guid.GUID
	// Children are the nodes attached directly below, in plan order.
	Children []guid.GUID
	// Peers are the other nodes at the same level sharing Parent (for
	// roots: the other roots). A single-rooted plan needs no root peers;
	// forests exchange digests across the root clique.
	Peers []guid.GUID
	// Level is the distance from the root (0 at a root).
	Level int
}

// PlanTree lays ids out as the same complete k-ary tree BuildTree wires —
// ids[0] the root, level order, branching children per node — but returns
// only the attachment plan instead of constructing TreeNodes: the caller
// (the SCINET fabric hierarchy, the E16 simulation) attaches content
// routing to the shape. Branching below 2 is raised to 2.
func PlanTree(ids []guid.GUID, branching int) map[guid.GUID]TreeSpec {
	if branching < 2 {
		branching = 2
	}
	plan := make(map[guid.GUID]TreeSpec, len(ids))
	level := func(i int) int {
		l := 0
		for i > 0 {
			i = (i - 1) / branching
			l++
		}
		return l
	}
	for i, id := range ids {
		spec := TreeSpec{Level: level(i)}
		if i > 0 {
			spec.Parent = ids[(i-1)/branching]
		}
		for c := i*branching + 1; c <= i*branching+branching && c < len(ids); c++ {
			spec.Children = append(spec.Children, ids[c])
		}
		for j, other := range ids {
			if j == i || level(j) != spec.Level {
				continue
			}
			if i == 0 || (j-1)/branching == (i-1)/branching {
				spec.Peers = append(spec.Peers, other)
			}
		}
		plan[id] = spec
	}
	return plan
}

// Close detaches every node.
func (t *Tree) Close() error {
	var first error
	for _, n := range t.Nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ID implements Router.
func (n *TreeNode) ID() guid.GUID { return n.id }

// Relayed implements Router.
func (n *TreeNode) Relayed() uint64 { return n.relayed.Value() }

// Delivered returns how many payloads terminated here.
func (n *TreeNode) Delivered() uint64 { return n.delivered.Value() }

// Route implements Router.
func (n *TreeNode) Route(target guid.GUID, appKind string, payload []byte) error {
	return n.forward(treeRouteBody{
		Target:  target,
		Origin:  n.id,
		AppKind: appKind,
		Payload: payload,
	})
}

func (n *TreeNode) forward(body treeRouteBody) error {
	if body.Target == n.id {
		n.delivered.Inc()
		n.RouteHops.Record(int64(body.Hops))
		if n.deliver != nil {
			n.deliver(Delivery{
				Target:  body.Target,
				Origin:  body.Origin,
				AppKind: body.AppKind,
				Payload: body.Payload,
				Hops:    body.Hops,
			})
		}
		return nil
	}
	next := n.nextHop(body.Target)
	if next.IsNil() {
		return fmt.Errorf("%w: %s not in tree", ErrNoRoute, body.Target.Short())
	}
	body.Hops++
	m, err := wire.NewMessage(n.id, next, wire.KindOverlayRoute, body)
	if err != nil {
		return err
	}
	if err := n.ep.Send(m); err != nil {
		return fmt.Errorf("overlay: tree send: %w", err)
	}
	return nil
}

// nextHop routes down into the child subtree containing target, else up.
func (n *TreeNode) nextHop(target guid.GUID) guid.GUID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for child, subtree := range n.children {
		if subtree.Has(target) {
			return child
		}
	}
	return n.parent // nil at the root for unknown targets
}

func (n *TreeNode) handle(m wire.Message) {
	n.mu.RLock()
	closed := n.closed
	n.mu.RUnlock()
	if closed || m.Kind != wire.KindOverlayRoute {
		return
	}
	var body treeRouteBody
	if err := m.DecodeBody(&body); err != nil {
		return
	}
	if body.Target != n.id {
		n.relayed.Inc()
	}
	_ = n.forward(body)
}

// Close implements Router.
func (n *TreeNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	return n.ep.Close()
}

var _ Router = (*TreeNode)(nil)
