package overlay

import (
	"encoding/json"
	"fmt"
	"sync"

	"sci/internal/wire"
)

// AppBatchFolder folds a native event batch back into one application
// payload for a legacy hop: it receives the payload RouteBatch shipped (the
// application body minus its events), the batch's events as per-event JSON
// frames, and the batch credit, and returns the complete legacy payload.
// Applications that route batches (the SCINET fabric's event fan-out)
// register one per AppKind.
type AppBatchFolder func(payload json.RawMessage, frames []json.RawMessage, credit *wire.BatchCredit) (json.RawMessage, error)

var (
	appFolderMu sync.RWMutex
	appFolders  = make(map[string]AppBatchFolder)
)

// RegisterAppBatchFolder installs the legacy fold for one application kind.
func RegisterAppBatchFolder(appKind string, f AppBatchFolder) {
	appFolderMu.Lock()
	defer appFolderMu.Unlock()
	appFolders[appKind] = f
}

func appFolderFor(appKind string) AppBatchFolder {
	appFolderMu.RLock()
	defer appFolderMu.RUnlock()
	return appFolders[appKind]
}

// foldRouteBatch is the wire-level batch folder for KindOverlayRoute: a
// routed message's batch lives inside the application payload, so folding
// delegates to the AppKind's registered folder and re-marshals the route
// body around the result.
func foldRouteBatch(m wire.Message, frames []json.RawMessage, credit *wire.BatchCredit) (wire.Message, error) {
	var body routeBody
	if err := m.DecodeBody(&body); err != nil {
		return wire.Message{}, fmt.Errorf("overlay: fold route body: %w", err)
	}
	f := appFolderFor(body.AppKind)
	if f == nil {
		return wire.Message{}, fmt.Errorf("%w: no app batch folder registered for %q",
			wire.ErrBadMessage, body.AppKind)
	}
	payload, err := f(body.Payload, frames, credit)
	if err != nil {
		return wire.Message{}, err
	}
	body.Payload = payload
	out, err := wire.NewMessage(m.Src, m.Dst, m.Kind, body)
	if err != nil {
		return wire.Message{}, err
	}
	out.Corr = m.Corr
	out.TTL = m.TTL
	return out, nil
}

func init() {
	wire.RegisterBatchFolder(wire.KindOverlayRoute, foldRouteBatch)
}
