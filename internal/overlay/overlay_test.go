package overlay

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sci/internal/clock"
	"sci/internal/guid"
	"sci/internal/transport"
)

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// deliverySink collects deliveries across nodes.
type deliverySink struct {
	mu   sync.Mutex
	recv []Delivery
}

func (s *deliverySink) add(d Delivery) {
	s.mu.Lock()
	s.recv = append(s.recv, d)
	s.mu.Unlock()
}

func (s *deliverySink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recv)
}

func (s *deliverySink) all() []Delivery {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Delivery, len(s.recv))
	copy(out, s.recv)
	return out
}

// buildOverlay creates n nodes joined into one overlay over a fresh memory
// network, with deterministic join order and per-node delivery sinks.
func buildOverlay(t testing.TB, n int, rng *rand.Rand) ([]*Node, map[guid.GUID]*deliverySink, *transport.Memory) {
	t.Helper()
	net := NewTestMemory()
	nodes := make([]*Node, 0, n)
	sinks := make(map[guid.GUID]*deliverySink, n)
	for i := 0; i < n; i++ {
		sink := &deliverySink{}
		node, err := NewNode(Config{
			Network: net,
			Deliver: sink.add,
		})
		if err != nil {
			t.Fatal(err)
		}
		sinks[node.ID()] = sink
		if i > 0 {
			boot := nodes[rng.Intn(len(nodes))].ID()
			if err := node.Join(boot); err != nil {
				t.Fatalf("join node %d: %v", i, err)
			}
		}
		nodes = append(nodes, node)
	}
	return nodes, sinks, net
}

// NewTestMemory returns a zero-latency in-process network.
func NewTestMemory() *transport.Memory {
	return transport.NewMemory(transport.MemoryConfig{})
}

func closeAll(t testing.TB, nodes []*Node, net *transport.Memory) {
	t.Helper()
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			t.Error(err)
		}
	}
	if err := net.Close(); err != nil {
		t.Error(err)
	}
}

func TestSingleNodeDeliversToSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nodes, sinks, net := buildOverlay(t, 1, rng)
	defer closeAll(t, nodes, net)
	n := nodes[0]
	if err := n.Route(n.ID(), "test", []byte(`"hello"`)); err != nil {
		t.Fatal(err)
	}
	sink := sinks[n.ID()]
	waitFor(t, func() bool { return sink.count() == 1 })
	d := sink.all()[0]
	if d.Hops != 0 || d.Origin != n.ID() || d.AppKind != "test" {
		t.Fatalf("delivery = %+v", d)
	}
}

func TestPairwiseRoutingSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nodes, sinks, net := buildOverlay(t, 8, rng)
	defer closeAll(t, nodes, net)
	for _, src := range nodes {
		for _, dst := range nodes {
			if err := src.Route(dst.ID(), "probe", nil); err != nil {
				t.Fatalf("route %s→%s: %v", src.ID().Short(), dst.ID().Short(), err)
			}
		}
	}
	// Every node must receive exactly len(nodes) deliveries (one per source).
	for _, dst := range nodes {
		sink := sinks[dst.ID()]
		waitFor(t, func() bool { return sink.count() >= len(nodes) })
		for _, d := range sink.all() {
			if d.Target != dst.ID() {
				t.Fatalf("misdelivery: target %s arrived at %s", d.Target.Short(), dst.ID().Short())
			}
		}
	}
}

func TestRoutingAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(3))
	const n = 64
	nodes, sinks, net := buildOverlay(t, n, rng)
	defer closeAll(t, nodes, net)

	const probes = 300
	expected := make(map[guid.GUID]int)
	for i := 0; i < probes; i++ {
		src := nodes[rng.Intn(n)]
		dst := nodes[rng.Intn(n)]
		expected[dst.ID()]++
		if err := src.Route(dst.ID(), "probe", nil); err != nil {
			t.Fatal(err)
		}
	}
	for id, want := range expected {
		sink := sinks[id]
		want := want
		waitFor(t, func() bool { return sink.count() >= want })
	}
	// Hop counts must be bounded well below the TTL; with 64 nodes, greedy
	// prefix routing should resolve in a handful of hops.
	var maxHops int
	for _, sink := range sinks {
		for _, d := range sink.all() {
			if d.Hops > maxHops {
				maxHops = d.Hops
			}
		}
	}
	if maxHops > 10 {
		t.Fatalf("max hops = %d, want small (O(log n))", maxHops)
	}
}

func TestKeyBasedRoutingDeliversSomewhereOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nodes, sinks, net := buildOverlay(t, 16, rng)
	defer closeAll(t, nodes, net)

	// Route to a random key that is not a node id: key-based routing must
	// deliver it at exactly one node (a local ring-distance minimum).
	key := guid.New(guid.KindQuery)
	if err := nodes[len(nodes)-1].Route(key, "kbr", nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		total := 0
		for _, sink := range sinks {
			total += sink.count()
		}
		return total == 1
	})
	time.Sleep(20 * time.Millisecond) // would reveal duplicate deliveries
	for _, sink := range sinks {
		for _, d := range sink.all() {
			if d.Target != key {
				t.Fatalf("delivered wrong target: %v", d)
			}
		}
	}
}

func TestJoinTimeoutWhenBootstrapGone(t *testing.T) {
	net := NewTestMemory()
	defer net.Close()
	node, err := NewNode(Config{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	err = node.Join(guid.New(guid.KindServer)) // no such node attached
	if err == nil {
		t.Fatal("join to missing bootstrap succeeded")
	}
}

func TestJoinFromSelfRejected(t *testing.T) {
	net := NewTestMemory()
	defer net.Close()
	node, err := NewNode(Config{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Join(node.ID()); err == nil {
		t.Fatal("self-bootstrap accepted")
	}
}

func TestNodeFailureHeartbeatEviction(t *testing.T) {
	clk := clock.NewManual(time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC))
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()

	mk := func() *Node {
		n, err := NewNode(Config{
			Network:        net,
			Clock:          clk,
			HeartbeatEvery: time.Second,
			FailAfter:      3 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := mk()
	b := mk()
	c := mk()
	defer a.Close()
	defer c.Close()
	if err := b.Join(a.ID()); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(b.ID()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		return guid.NewSet(a.Known()...).Has(b.ID())
	})

	// Kill b: partition it so pings go unanswered, then advance past
	// FailAfter. The heartbeat loop must evict b from a's and c's tables.
	net.Partition(b.ID())
	for i := 0; i < 8; i++ {
		clk.Advance(time.Second)
		time.Sleep(5 * time.Millisecond) // let handlers drain
	}
	waitFor(t, func() bool {
		return !guid.NewSet(a.Known()...).Has(b.ID()) &&
			!guid.NewSet(c.Known()...).Has(b.ID())
	})
	_ = b.Close()

	// Routing between the survivors must still work.
	var sinkMu sync.Mutex
	got := 0
	// Rebuild a with a sink? Instead route c→a and check a.Delivered.
	before := a.Delivered()
	if err := c.Route(a.ID(), "after-failure", nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return a.Delivered() == before+1 })
	sinkMu.Lock()
	_ = got
	sinkMu.Unlock()
}

func TestCloseIsIdempotentAndStopsRouting(t *testing.T) {
	net := NewTestMemory()
	defer net.Close()
	n, err := NewNode(Config{Network: net})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRelayedCountsOnlyForwarded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nodes, sinks, net := buildOverlay(t, 24, rng)
	defer closeAll(t, nodes, net)
	const probes = 200
	for i := 0; i < probes; i++ {
		src := nodes[rng.Intn(len(nodes))]
		dst := nodes[rng.Intn(len(nodes))]
		if err := src.Route(dst.ID(), "p", nil); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, sink := range sinks {
		total += sink.count()
	}
	waitFor(t, func() bool {
		total = 0
		for _, sink := range sinks {
			total += sink.count()
		}
		return total == probes
	})
	// Every message with h ≥ 1 hops was forwarded by h-1 intermediate nodes
	// (the final receiver delivers rather than relays), so total relays =
	// total hops − number of messages that took at least one hop.
	var hops, forwarded uint64
	for _, sink := range sinks {
		for _, d := range sink.all() {
			hops += uint64(d.Hops)
			if d.Hops >= 1 {
				forwarded++
			}
		}
	}
	var relays uint64
	for _, n := range nodes {
		relays += n.Relayed()
	}
	if relays != hops-forwarded {
		t.Fatalf("relays %d != hops %d − forwarded msgs %d", relays, hops, forwarded)
	}
}

// --- state (routing table) unit tests ---

func TestStateConsiderAndNextHopProgress(t *testing.T) {
	self := guid.New(guid.KindServer)
	s := newState(self)
	if s.nextHop(guid.New(guid.KindServer)) != guid.Nil {
		t.Fatal("empty state should have no hop")
	}
	var ids []guid.GUID
	for i := 0; i < 50; i++ {
		id := guid.New(guid.KindServer)
		ids = append(ids, id)
		s.consider(id)
	}
	// consider(self) must be a no-op.
	if s.consider(self) {
		t.Fatal("considered self")
	}
	if s.consider(guid.Nil) {
		t.Fatal("considered nil")
	}
	for _, target := range ids {
		hop := s.nextHop(target)
		if hop.IsNil() {
			t.Fatal("no hop for known target")
		}
		if !guid.RingCloserTo(target, hop, self) {
			t.Fatal("next hop not strictly ring-closer to target")
		}
	}
}

func TestStateForget(t *testing.T) {
	self := guid.New(guid.KindServer)
	s := newState(self)
	id := guid.New(guid.KindServer)
	s.consider(id)
	if !guid.NewSet(s.known()...).Has(id) {
		t.Fatal("consider did not record")
	}
	s.forget(id)
	if guid.NewSet(s.known()...).Has(id) {
		t.Fatal("forget did not remove")
	}
}

func TestStateLeafSetBoundedAndAccurate(t *testing.T) {
	self := guid.New(guid.KindServer)
	s := newState(self)
	var all []guid.GUID
	for i := 0; i < 200; i++ {
		id := guid.New(guid.KindServer)
		all = append(all, id)
		s.consider(id)
	}
	if n := len(s.leafList()); n > 2*leafK {
		t.Fatalf("leaf set grew to %d > %d", n, 2*leafK)
	}
	// The leaf set must contain the true closest successor and predecessor
	// among everything considered.
	bestSucc, bestPred := all[0], all[0]
	for _, id := range all[1:] {
		if guid.Compare(guid.CWDist(self, id), guid.CWDist(self, bestSucc)) < 0 {
			bestSucc = id
		}
		if guid.Compare(guid.CWDist(id, self), guid.CWDist(bestPred, self)) < 0 {
			bestPred = id
		}
	}
	leaves := guid.NewSet(s.leafList()...)
	if !leaves.Has(bestSucc) {
		t.Fatal("leaf set missing true closest successor")
	}
	if !leaves.Has(bestPred) {
		t.Fatal("leaf set missing true closest predecessor")
	}
}

// Property: nextHop always strictly decreases XOR distance, so any route
// terminates within TTL.
func TestPropNextHopStrictlyCloser(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var raw guid.GUID
		for i := range raw {
			raw[i] = byte(rng.Intn(256))
		}
		s := newState(raw)
		for i := 0; i < 30; i++ {
			var id guid.GUID
			for j := range id {
				id[j] = byte(rng.Intn(256))
			}
			s.consider(id)
		}
		var target guid.GUID
		for j := range target {
			target[j] = byte(rng.Intn(256))
		}
		hop := s.nextHop(target)
		if hop.IsNil() {
			return true // local delivery is always safe
		}
		return guid.RingCloserTo(target, hop, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- hierarchical baseline tests ---

func TestTreeRouting(t *testing.T) {
	net := NewTestMemory()
	defer net.Close()
	ids := make([]guid.GUID, 15)
	for i := range ids {
		ids[i] = guid.New(guid.KindServer)
	}
	var mu sync.Mutex
	got := make(map[guid.GUID][]Delivery)
	tree, err := BuildTree(net, ids, 2, func(at guid.GUID, d Delivery) {
		mu.Lock()
		got[at] = append(got[at], d)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	// Every pair must be routable.
	for _, src := range ids {
		for _, dst := range ids {
			if err := tree.Nodes[src].Route(dst, "p", nil); err != nil {
				t.Fatalf("tree route: %v", err)
			}
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, ds := range got {
			total += len(ds)
		}
		return total == len(ids)*len(ids)
	})
	mu.Lock()
	defer mu.Unlock()
	for at, ds := range got {
		for _, d := range ds {
			if d.Target != at {
				t.Fatalf("tree misdelivery at %s: %+v", at.Short(), d)
			}
		}
	}
}

func TestTreeRootConcentration(t *testing.T) {
	// The defining property of the hierarchical baseline: leaf-to-leaf
	// traffic between different root subtrees always crosses the root.
	net := NewTestMemory()
	defer net.Close()
	ids := make([]guid.GUID, 31) // complete binary tree, 5 levels
	for i := range ids {
		ids[i] = guid.New(guid.KindServer)
	}
	tree, err := BuildTree(net, ids, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	// Route between the leftmost and rightmost leaves repeatedly.
	left, right := ids[15], ids[30]
	const n = 50
	for i := 0; i < n; i++ {
		if err := tree.Nodes[left].Route(right, "x", nil); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return tree.Nodes[right].Delivered() == n })
	if got := tree.Root.Relayed(); got != n {
		t.Fatalf("root relayed %d, want %d (all cross-subtree traffic)", got, n)
	}
}

func TestTreeUnknownTarget(t *testing.T) {
	net := NewTestMemory()
	defer net.Close()
	ids := []guid.GUID{guid.New(guid.KindServer)}
	tree, err := BuildTree(net, ids, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if err := tree.Root.Route(guid.New(guid.KindServer), "x", nil); err == nil {
		t.Fatal("routing to unknown target in tree succeeded")
	}
}

func TestBuildTreeValidation(t *testing.T) {
	net := NewTestMemory()
	defer net.Close()
	if _, err := BuildTree(net, nil, 2, nil); err == nil {
		t.Fatal("empty tree accepted")
	}
}
