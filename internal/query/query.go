// Package query implements the five-part query model of the paper's
// Section 4.3 (Fig 6): What, Where, When, Which and Mode.
//
//	<query>
//	      <query_id> </query_id>
//	      <owner_id> </owner_id>
//	      <what> </what>
//	      <where> </where>
//	      <when> </when>
//	      <which> </which>
//	      <mode> </mode>
//	</query>
//
// What describes the information sought: an entity type (e.g. a printer), a
// named entity (by GUID), or information fitting a pattern (a context
// type). Where scopes it to a location, explicit ("Room 10.01") or implicit
// ("closest to me"). When gives the temporal condition under which the
// configuration should execute. Which selects among multiple satisfying
// entities ("shortest time to service completion"). Mode states the intent:
// profile request, event subscription, one-time subscription, or
// advertisement request.
//
// Queries have two wire forms: the XML form shown in the paper (Encode /
// Decode) and a compact text form for command lines and logs (ParseText).
package query

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/location"
)

// Mode is the intent of a query (paper, Section 4.3).
type Mode string

// The four query modes.
const (
	// ModeProfile requests information about CEs.
	ModeProfile Mode = "profile"
	// ModeSubscribe subscribes to a piece of information with updates.
	ModeSubscribe Mode = "subscribe"
	// ModeOnce is a subscription cancelled after the first event.
	ModeOnce Mode = "once"
	// ModeAdvertisement requests the interface to communicate with a
	// service.
	ModeAdvertisement Mode = "advertisement"
)

// Valid reports whether m is a defined mode.
func (m Mode) Valid() bool {
	switch m {
	case ModeProfile, ModeSubscribe, ModeOnce, ModeAdvertisement:
		return true
	}
	return false
}

// What describes the information a query seeks. Exactly one field is set.
type What struct {
	// EntityType names a category of entity ("printer", "display"),
	// matched against advertisement interfaces and the "kind" attribute of
	// profiles.
	EntityType string `json:"entity_type,omitempty"`
	// Entity names one entity by GUID.
	Entity guid.GUID `json:"entity,omitzero"`
	// Pattern requests information fitting a context-type pattern
	// ("temperature.celsius", "path.route").
	Pattern ctxtype.Type `json:"pattern,omitempty"`
}

// Kind returns which variant is set: "entity-type", "entity", "pattern" or
// "" when empty.
func (w What) Kind() string {
	switch {
	case w.EntityType != "":
		return "entity-type"
	case !w.Entity.IsNil():
		return "entity"
	case w.Pattern != "":
		return "pattern"
	}
	return ""
}

// Where scopes a query to a location.
type Where struct {
	// Explicit is a concrete location in the intermediate language.
	Explicit location.Ref `json:"explicit,omitzero"`
	// Implicit is a relative expression resolved at execution time against
	// the query subject's own location: "closest-to-me", "same-room",
	// "same-floor". Empty means unscoped.
	Implicit string `json:"implicit,omitempty"`
}

// Empty reports no location scoping.
func (w Where) Empty() bool { return w.Explicit.Empty() && w.Implicit == "" }

// Recognised implicit where-expressions.
const (
	ImplicitClosest   = "closest-to-me"
	ImplicitSameRoom  = "same-room"
	ImplicitSameFloor = "same-floor"
)

// When gives the temporal condition governing configuration execution.
// The zero value means "execute immediately".
type When struct {
	// After defers execution until the given instant.
	After time.Time `json:"after,omitzero"`
	// Trigger defers execution until an event matching the filter occurs
	// (CAPA: "when Bob enters L10.01").
	Trigger *event.Filter `json:"trigger,omitempty"`
	// Expires abandons the stored query after this instant (zero = never).
	Expires time.Time `json:"expires,omitzero"`
}

// Immediate reports whether the query should execute right away.
func (w When) Immediate() bool { return w.After.IsZero() && w.Trigger == nil }

// Which expresses the qualitative selection among multiple candidates.
type Which struct {
	// Criterion ranks candidates: "closest", "shortest-queue",
	// "highest-quality", or "" (registry default ordering).
	Criterion string `json:"criterion,omitempty"`
	// Constraints are hard requirements on profile attributes, e.g.
	// {"status":"idle"}. A candidate failing any constraint is discarded.
	Constraints map[string]string `json:"constraints,omitempty"`
}

// Recognised which-criteria.
const (
	CriterionClosest        = "closest"
	CriterionShortestQueue  = "shortest-queue"
	CriterionHighestQuality = "highest-quality"
)

// Query is the five-part query of Fig 6.
type Query struct {
	ID    guid.GUID `json:"query_id"`
	Owner guid.GUID `json:"owner_id"`
	What  What      `json:"what"`
	Where Where     `json:"where,omitzero"`
	When  When      `json:"when,omitzero"`
	Which Which     `json:"which,omitzero"`
	Mode  Mode      `json:"mode"`
}

// ErrBadQuery reports an invalid query.
var ErrBadQuery = errors.New("query: invalid")

// New builds a query with a fresh id.
func New(owner guid.GUID, what What, mode Mode) Query {
	return Query{
		ID:    guid.New(guid.KindQuery),
		Owner: owner,
		What:  what,
		Mode:  mode,
	}
}

// Validate checks structural invariants.
func (q Query) Validate() error {
	if q.ID.IsNil() {
		return fmt.Errorf("%w: nil id", ErrBadQuery)
	}
	if q.Owner.IsNil() {
		return fmt.Errorf("%w: nil owner", ErrBadQuery)
	}
	if !q.Mode.Valid() {
		return fmt.Errorf("%w: mode %q", ErrBadQuery, q.Mode)
	}
	switch q.What.Kind() {
	case "":
		return fmt.Errorf("%w: empty what", ErrBadQuery)
	case "pattern":
		if err := q.What.Pattern.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
	}
	set := 0
	if q.What.EntityType != "" {
		set++
	}
	if !q.What.Entity.IsNil() {
		set++
	}
	if q.What.Pattern != "" {
		set++
	}
	if set > 1 {
		return fmt.Errorf("%w: what must set exactly one of entity-type/entity/pattern", ErrBadQuery)
	}
	if w := q.Where.Implicit; w != "" && w != ImplicitClosest && w != ImplicitSameRoom && w != ImplicitSameFloor {
		return fmt.Errorf("%w: implicit where %q", ErrBadQuery, w)
	}
	if c := q.Which.Criterion; c != "" && c != CriterionClosest && c != CriterionShortestQueue && c != CriterionHighestQuality {
		return fmt.Errorf("%w: which criterion %q", ErrBadQuery, c)
	}
	return nil
}

// String renders the compact text form (parsable by ParseText).
func (q Query) String() string {
	var b strings.Builder
	switch q.What.Kind() {
	case "entity-type":
		fmt.Fprintf(&b, "what=type:%s", q.What.EntityType)
	case "entity":
		fmt.Fprintf(&b, "what=entity:%s", q.What.Entity)
	case "pattern":
		fmt.Fprintf(&b, "what=pattern:%s", q.What.Pattern)
	}
	if q.Where.Implicit != "" {
		fmt.Fprintf(&b, " where=%s", q.Where.Implicit)
	} else if q.Where.Explicit.Path != "" {
		fmt.Fprintf(&b, " where=path:%s", q.Where.Explicit.Path)
	} else if q.Where.Explicit.Place != "" {
		fmt.Fprintf(&b, " where=place:%s", q.Where.Explicit.Place)
	}
	if q.Which.Criterion != "" {
		fmt.Fprintf(&b, " which=%s", q.Which.Criterion)
	}
	// Constraints in sorted order for determinism.
	keys := make([]string, 0, len(q.Which.Constraints))
	for k := range q.Which.Constraints {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " require=%s:%s", k, q.Which.Constraints[k])
	}
	fmt.Fprintf(&b, " mode=%s", q.Mode)
	return b.String()
}

// ParseText parses the compact text form:
//
//	what=pattern:temperature.celsius where=place:l10.01 which=closest \
//	    require=status:idle mode=subscribe
//
// The owner and a fresh id are supplied by the caller.
func ParseText(owner guid.GUID, s string) (Query, error) {
	q := Query{ID: guid.New(guid.KindQuery), Owner: owner, Mode: ModeSubscribe}
	for _, tok := range strings.Fields(s) {
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return Query{}, fmt.Errorf("%w: token %q", ErrBadQuery, tok)
		}
		switch key {
		case "what":
			tag, rest, ok := strings.Cut(val, ":")
			if !ok {
				return Query{}, fmt.Errorf("%w: what needs type:/entity:/pattern: prefix", ErrBadQuery)
			}
			switch tag {
			case "type":
				q.What.EntityType = rest
			case "entity":
				g, err := guid.Parse(rest)
				if err != nil {
					return Query{}, fmt.Errorf("%w: %v", ErrBadQuery, err)
				}
				q.What.Entity = g
			case "pattern":
				q.What.Pattern = ctxtype.Type(rest)
			default:
				return Query{}, fmt.Errorf("%w: what tag %q", ErrBadQuery, tag)
			}
		case "where":
			if tag, rest, ok := strings.Cut(val, ":"); ok && (tag == "path" || tag == "place") {
				if tag == "path" {
					q.Where.Explicit = location.AtPath(location.Path(rest))
				} else {
					q.Where.Explicit = location.AtPlace(location.PlaceID(rest))
				}
			} else {
				q.Where.Implicit = val
			}
		case "which":
			q.Which.Criterion = val
		case "require":
			k, v, ok := strings.Cut(val, ":")
			if !ok {
				return Query{}, fmt.Errorf("%w: require needs key:value", ErrBadQuery)
			}
			if q.Which.Constraints == nil {
				q.Which.Constraints = make(map[string]string)
			}
			q.Which.Constraints[k] = v
		case "mode":
			q.Mode = Mode(val)
		default:
			return Query{}, fmt.Errorf("%w: unknown key %q", ErrBadQuery, key)
		}
	}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// xmlQuery is the XML wire form matching the paper's Fig 6.
type xmlQuery struct {
	XMLName xml.Name `xml:"query"`
	ID      string   `xml:"query_id"`
	Owner   string   `xml:"owner_id"`
	What    xmlWhat  `xml:"what"`
	Where   xmlWhere `xml:"where"`
	When    xmlWhen  `xml:"when"`
	Which   xmlWhich `xml:"which"`
	Mode    string   `xml:"mode"`
}

type xmlWhat struct {
	EntityType string `xml:"entity_type,omitempty"`
	Entity     string `xml:"entity,omitempty"`
	Pattern    string `xml:"pattern,omitempty"`
}

type xmlWhere struct {
	Implicit string `xml:"implicit,omitempty"`
	Path     string `xml:"path,omitempty"`
	Place    string `xml:"place,omitempty"`
}

type xmlWhen struct {
	After       string `xml:"after,omitempty"`
	Expires     string `xml:"expires,omitempty"`
	TriggerType string `xml:"trigger_type,omitempty"`
	TriggerSubj string `xml:"trigger_subject,omitempty"`
	TriggerRng  string `xml:"trigger_range,omitempty"`
}

type xmlWhich struct {
	Criterion   string          `xml:"criterion,omitempty"`
	Constraints []xmlConstraint `xml:"require"`
}

type xmlConstraint struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// Encode renders the XML wire form of Fig 6.
func (q Query) Encode() ([]byte, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	x := xmlQuery{
		ID:    q.ID.String(),
		Owner: q.Owner.String(),
		Mode:  string(q.Mode),
	}
	x.What.EntityType = q.What.EntityType
	if !q.What.Entity.IsNil() {
		x.What.Entity = q.What.Entity.String()
	}
	x.What.Pattern = string(q.What.Pattern)
	x.Where.Implicit = q.Where.Implicit
	x.Where.Path = string(q.Where.Explicit.Path)
	x.Where.Place = string(q.Where.Explicit.Place)
	if !q.When.After.IsZero() {
		x.When.After = q.When.After.Format(time.RFC3339Nano)
	}
	if !q.When.Expires.IsZero() {
		x.When.Expires = q.When.Expires.Format(time.RFC3339Nano)
	}
	if tr := q.When.Trigger; tr != nil {
		x.When.TriggerType = string(tr.Type)
		if !tr.Subject.IsNil() {
			x.When.TriggerSubj = tr.Subject.String()
		}
		if !tr.Range.IsNil() {
			x.When.TriggerRng = tr.Range.String()
		}
	}
	x.Which.Criterion = q.Which.Criterion
	keys := make([]string, 0, len(q.Which.Constraints))
	for k := range q.Which.Constraints {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		x.Which.Constraints = append(x.Which.Constraints, xmlConstraint{Key: k, Value: q.Which.Constraints[k]})
	}
	return xml.MarshalIndent(x, "", "  ")
}

// Decode parses the XML wire form and validates the result.
func Decode(data []byte) (Query, error) {
	var x xmlQuery
	if err := xml.Unmarshal(data, &x); err != nil {
		return Query{}, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	var q Query
	var err error
	if q.ID, err = guid.Parse(x.ID); err != nil {
		return Query{}, fmt.Errorf("%w: query_id: %v", ErrBadQuery, err)
	}
	if q.Owner, err = guid.Parse(x.Owner); err != nil {
		return Query{}, fmt.Errorf("%w: owner_id: %v", ErrBadQuery, err)
	}
	q.Mode = Mode(x.Mode)
	q.What.EntityType = x.What.EntityType
	if x.What.Entity != "" {
		if q.What.Entity, err = guid.Parse(x.What.Entity); err != nil {
			return Query{}, fmt.Errorf("%w: what entity: %v", ErrBadQuery, err)
		}
	}
	q.What.Pattern = ctxtype.Type(x.What.Pattern)
	q.Where.Implicit = x.Where.Implicit
	if x.Where.Path != "" {
		q.Where.Explicit.Path = location.Path(x.Where.Path)
	}
	if x.Where.Place != "" {
		q.Where.Explicit.Place = location.PlaceID(x.Where.Place)
	}
	if x.When.After != "" {
		if q.When.After, err = time.Parse(time.RFC3339Nano, x.When.After); err != nil {
			return Query{}, fmt.Errorf("%w: when after: %v", ErrBadQuery, err)
		}
	}
	if x.When.Expires != "" {
		if q.When.Expires, err = time.Parse(time.RFC3339Nano, x.When.Expires); err != nil {
			return Query{}, fmt.Errorf("%w: when expires: %v", ErrBadQuery, err)
		}
	}
	if x.When.TriggerType != "" || x.When.TriggerSubj != "" || x.When.TriggerRng != "" {
		tr := &event.Filter{Type: ctxtype.Type(x.When.TriggerType)}
		if x.When.TriggerSubj != "" {
			if tr.Subject, err = guid.Parse(x.When.TriggerSubj); err != nil {
				return Query{}, fmt.Errorf("%w: trigger subject: %v", ErrBadQuery, err)
			}
		}
		if x.When.TriggerRng != "" {
			if tr.Range, err = guid.Parse(x.When.TriggerRng); err != nil {
				return Query{}, fmt.Errorf("%w: trigger range: %v", ErrBadQuery, err)
			}
		}
		q.When.Trigger = tr
	}
	q.Which.Criterion = x.Which.Criterion
	if len(x.Which.Constraints) > 0 {
		q.Which.Constraints = make(map[string]string, len(x.Which.Constraints))
		for _, c := range x.Which.Constraints {
			q.Which.Constraints[c.Key] = c.Value
		}
	}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}
