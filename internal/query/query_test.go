package query

import (
	"errors"
	"strings"
	"testing"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/location"
)

func owner() guid.GUID { return guid.New(guid.KindApplication) }

func TestModeValid(t *testing.T) {
	for _, m := range []Mode{ModeProfile, ModeSubscribe, ModeOnce, ModeAdvertisement} {
		if !m.Valid() {
			t.Errorf("%q should be valid", m)
		}
	}
	if Mode("bogus").Valid() || Mode("").Valid() {
		t.Error("invalid modes accepted")
	}
}

func TestWhatKind(t *testing.T) {
	if (What{}).Kind() != "" {
		t.Error("empty what kind")
	}
	if (What{EntityType: "printer"}).Kind() != "entity-type" {
		t.Error("entity-type kind")
	}
	if (What{Entity: guid.New(guid.KindPerson)}).Kind() != "entity" {
		t.Error("entity kind")
	}
	if (What{Pattern: ctxtype.PathRoute}).Kind() != "pattern" {
		t.Error("pattern kind")
	}
}

func TestValidate(t *testing.T) {
	good := New(owner(), What{Pattern: ctxtype.TemperatureCelsius}, ModeSubscribe)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := good
	bad.ID = guid.Nil
	if bad.Validate() == nil {
		t.Error("nil id accepted")
	}
	bad = good
	bad.Owner = guid.Nil
	if bad.Validate() == nil {
		t.Error("nil owner accepted")
	}
	bad = good
	bad.Mode = "bogus"
	if bad.Validate() == nil {
		t.Error("bad mode accepted")
	}
	bad = good
	bad.What = What{}
	if bad.Validate() == nil {
		t.Error("empty what accepted")
	}
	bad = good
	bad.What.Pattern = "BAD TYPE"
	if bad.Validate() == nil {
		t.Error("bad pattern accepted")
	}
	bad = good
	bad.What.EntityType = "printer" // two variants set
	if bad.Validate() == nil {
		t.Error("double what accepted")
	}
	bad = good
	bad.Where.Implicit = "nonsense"
	if bad.Validate() == nil {
		t.Error("bad implicit where accepted")
	}
	bad = good
	bad.Which.Criterion = "nonsense"
	if bad.Validate() == nil {
		t.Error("bad criterion accepted")
	}
}

func TestWhenImmediate(t *testing.T) {
	if !(When{}).Immediate() {
		t.Error("zero When should be immediate")
	}
	if (When{After: time.Now()}).Immediate() {
		t.Error("deferred When reported immediate")
	}
	if (When{Trigger: &event.Filter{}}).Immediate() {
		t.Error("triggered When reported immediate")
	}
}

func TestTextRoundTrip(t *testing.T) {
	o := owner()
	q, err := ParseText(o, "what=pattern:printer.status where=place:l10.01 which=closest require=status:idle require=colour:yes mode=once")
	if err != nil {
		t.Fatal(err)
	}
	if q.Owner != o || q.Mode != ModeOnce {
		t.Fatalf("parsed = %+v", q)
	}
	if q.What.Pattern != ctxtype.PrinterStatus {
		t.Fatalf("pattern = %q", q.What.Pattern)
	}
	if q.Where.Explicit.Place != "l10.01" {
		t.Fatalf("where = %+v", q.Where)
	}
	if q.Which.Criterion != CriterionClosest || q.Which.Constraints["status"] != "idle" || q.Which.Constraints["colour"] != "yes" {
		t.Fatalf("which = %+v", q.Which)
	}
	// String → ParseText round trip.
	q2, err := ParseText(o, q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if q2.What != q.What || q2.Which.Criterion != q.Which.Criterion || q2.Mode != q.Mode {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", q, q2)
	}
}

func TestParseTextVariants(t *testing.T) {
	o := owner()
	ent := guid.New(guid.KindPerson)
	cases := []string{
		"what=type:printer mode=advertisement",
		"what=entity:" + ent.String() + " mode=profile",
		"what=pattern:temperature.celsius where=closest-to-me mode=subscribe",
		"what=pattern:path.route where=path:campus/lt/l10 mode=subscribe",
	}
	for _, s := range cases {
		q, err := ParseText(o, s)
		if err != nil {
			t.Errorf("ParseText(%q): %v", s, err)
			continue
		}
		if err := q.Validate(); err != nil {
			t.Errorf("ParseText(%q) produced invalid query: %v", s, err)
		}
	}
}

func TestParseTextErrors(t *testing.T) {
	o := owner()
	for _, s := range []string{
		"nonsense",
		"what=printer mode=subscribe",                  // missing what tag
		"what=bogus:x mode=subscribe",                  // unknown what tag
		"what=entity:notaguid mode=subscribe",          // bad GUID
		"what=pattern:x require=broken mode=subscribe", // bad require
		"unknown=x",
		"what=pattern:x mode=bogus",
		"", // empty ⇒ empty what
	} {
		if _, err := ParseText(o, s); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", s)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	o := owner()
	bob := guid.New(guid.KindPerson)
	rng := guid.New(guid.KindRange)
	q := New(o, What{EntityType: "printer"}, ModeSubscribe)
	q.Where.Explicit = location.AtPath("campus/lt/l10/l10.01")
	q.When = When{
		After:   time.Date(2003, 6, 17, 10, 0, 0, 0, time.UTC),
		Expires: time.Date(2003, 6, 18, 0, 0, 0, 0, time.UTC),
		Trigger: &event.Filter{
			Type:    ctxtype.LocationSightingDoor,
			Subject: bob,
			Range:   rng,
		},
	}
	q.Which = Which{
		Criterion:   CriterionClosest,
		Constraints: map[string]string{"status": "idle", "queue": "0"},
	}

	data, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's element names must appear.
	for _, el := range []string{"<query>", "<query_id>", "<owner_id>", "<what>", "<where>", "<when>", "<which>", "<mode>"} {
		if !strings.Contains(string(data), el) {
			t.Errorf("XML missing %s:\n%s", el, data)
		}
	}

	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != q.ID || back.Owner != q.Owner || back.Mode != q.Mode {
		t.Fatal("identity fields lost")
	}
	if back.What != q.What {
		t.Fatalf("what lost: %+v vs %+v", back.What, q.What)
	}
	if back.Where.Explicit.Path != q.Where.Explicit.Path {
		t.Fatal("where lost")
	}
	if !back.When.After.Equal(q.When.After) || !back.When.Expires.Equal(q.When.Expires) {
		t.Fatal("when instants lost")
	}
	if back.When.Trigger == nil || back.When.Trigger.Type != ctxtype.LocationSightingDoor ||
		back.When.Trigger.Subject != bob || back.When.Trigger.Range != rng {
		t.Fatalf("trigger lost: %+v", back.When.Trigger)
	}
	if back.Which.Criterion != q.Which.Criterion ||
		back.Which.Constraints["status"] != "idle" || back.Which.Constraints["queue"] != "0" {
		t.Fatalf("which lost: %+v", back.Which)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	q := Query{}
	if _, err := q.Encode(); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("encode invalid: %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"not xml at all",
		"<query><query_id>bogus</query_id></query>",
		"<query><query_id>" + guid.New(guid.KindQuery).String() + "</query_id><owner_id>bogus</owner_id></query>",
	}
	for _, s := range cases {
		if _, err := Decode([]byte(s)); !errors.Is(err, ErrBadQuery) {
			t.Errorf("Decode(%q): %v, want ErrBadQuery", s, err)
		}
	}
}

func TestStringStable(t *testing.T) {
	q := New(owner(), What{Pattern: ctxtype.PrinterStatus}, ModeSubscribe)
	q.Which.Constraints = map[string]string{"b": "2", "a": "1", "c": "3"}
	first := q.String()
	for i := 0; i < 10; i++ {
		if q.String() != first {
			t.Fatal("String not deterministic across calls")
		}
	}
	if !strings.Contains(first, "require=a:1 require=b:2 require=c:3") {
		t.Fatalf("constraints not sorted: %s", first)
	}
}

func BenchmarkEncodeDecodeXML(b *testing.B) {
	q := New(owner(), What{Pattern: ctxtype.PrinterStatus}, ModeSubscribe)
	q.Which = Which{Criterion: CriterionClosest, Constraints: map[string]string{"status": "idle"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := q.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseText(b *testing.B) {
	o := owner()
	s := "what=pattern:printer.status where=place:l10.01 which=closest require=status:idle mode=once"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseText(o, s); err != nil {
			b.Fatal(err)
		}
	}
}
