// Package registry implements the Registrar Context Utility (paper,
// Section 3.1): "maintains an accurate view of all entities within the
// current Range. All CE's are registered within a range when they arrive and
// deregistered upon departure."
//
// Registrations are lease-based: entities renew their lease (the Range
// Service's heartbeats do this on their behalf); a missed lease expires the
// registration, which is how component failure is detected and surfaced to
// the configuration runtime (the paper's adaptivity requirement, experiment
// E8). Watchers receive arrival and departure notifications.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sci/internal/clock"
	"sci/internal/guid"
)

// Registration is one entity's presence in a Range.
type Registration struct {
	// Entity is the registered entity's GUID.
	Entity guid.GUID `json:"entity"`
	// Kind caches the entity kind (also encoded in the GUID).
	Kind guid.Kind `json:"kind"`
	// Name is a human-readable label.
	Name string `json:"name"`
	// Expires is the lease deadline.
	Expires time.Time `json:"expires"`
}

// Reason classifies a departure.
type Reason int

// Departure reasons.
const (
	// ReasonDeregistered: the entity announced its departure (clean).
	ReasonDeregistered Reason = iota + 1
	// ReasonExpired: the lease lapsed (failure or silent departure).
	ReasonExpired
)

var reasonNames = [...]string{
	ReasonDeregistered: "deregistered",
	ReasonExpired:      "expired",
}

// String names the reason.
func (r Reason) String() string {
	if int(r) < len(reasonNames) && reasonNames[r] != "" {
		return reasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// Watcher observes arrivals and departures. Callbacks run synchronously on
// the mutating goroutine (Register/Deregister caller or the expiry sweep);
// they must be quick and must not call back into the Registrar.
type Watcher interface {
	OnArrival(Registration)
	OnDeparture(Registration, Reason)
}

// FuncWatcher adapts two funcs to Watcher; either may be nil.
type FuncWatcher struct {
	Arrival   func(Registration)
	Departure func(Registration, Reason)
}

// OnArrival implements Watcher.
func (w FuncWatcher) OnArrival(r Registration) {
	if w.Arrival != nil {
		w.Arrival(r)
	}
}

// OnDeparture implements Watcher.
func (w FuncWatcher) OnDeparture(r Registration, reason Reason) {
	if w.Departure != nil {
		w.Departure(r, reason)
	}
}

// Registrar tracks entity presence with leases. Construct with New.
type Registrar struct {
	clk      clock.Clock
	lease    time.Duration
	sweepGap time.Duration

	mu       sync.Mutex
	entries  map[guid.GUID]Registration
	watchers map[int]Watcher
	nextW    int
	sweep    clock.Timer
	closed   bool
}

// DefaultLease is the lease duration when Config.Lease is zero.
const DefaultLease = 30 * time.Second

// Config parameterises a Registrar.
type Config struct {
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Lease is the registration lifetime granted by Register/Renew.
	Lease time.Duration
	// SweepEvery is the expiry scan period; defaults to Lease/4.
	SweepEvery time.Duration
}

// Errors.
var (
	ErrClosed        = errors.New("registry: closed")
	ErrNotRegistered = errors.New("registry: entity not registered")
)

// New builds a Registrar and starts its expiry sweep.
func New(cfg Config) *Registrar {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.Lease <= 0 {
		cfg.Lease = DefaultLease
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = cfg.Lease / 4
	}
	r := &Registrar{
		clk:      cfg.Clock,
		lease:    cfg.Lease,
		sweepGap: cfg.SweepEvery,
		entries:  make(map[guid.GUID]Registration),
		watchers: make(map[int]Watcher),
	}
	r.mu.Lock()
	r.scheduleSweepLocked()
	r.mu.Unlock()
	return r
}

// Lease returns the configured lease duration (entities use it to pace
// renewals).
func (r *Registrar) Lease() time.Duration { return r.lease }

// Register adds (or refreshes) an entity. Re-registering an existing entity
// renews the lease without a second arrival notification.
func (r *Registrar) Register(entity guid.GUID, name string) (Registration, error) {
	if entity.IsNil() {
		return Registration{}, errors.New("registry: nil entity")
	}
	if name == "" {
		return Registration{}, errors.New("registry: empty name")
	}
	reg := Registration{
		Entity:  entity,
		Kind:    entity.Kind(),
		Name:    name,
		Expires: r.clk.Now().Add(r.lease),
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return Registration{}, ErrClosed
	}
	_, existed := r.entries[entity]
	r.entries[entity] = reg
	watchers := r.watcherListLocked()
	r.mu.Unlock()

	if !existed {
		for _, w := range watchers {
			w.OnArrival(reg)
		}
	}
	return reg, nil
}

// Renew extends the lease for entity.
func (r *Registrar) Renew(entity guid.GUID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	reg, ok := r.entries[entity]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotRegistered, entity.Short())
	}
	reg.Expires = r.clk.Now().Add(r.lease)
	r.entries[entity] = reg
	return nil
}

// Deregister removes entity, notifying watchers with ReasonDeregistered.
func (r *Registrar) Deregister(entity guid.GUID) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	reg, ok := r.entries[entity]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotRegistered, entity.Short())
	}
	delete(r.entries, entity)
	watchers := r.watcherListLocked()
	r.mu.Unlock()

	for _, w := range watchers {
		w.OnDeparture(reg, ReasonDeregistered)
	}
	return nil
}

// Lookup returns the registration for entity.
func (r *Registrar) Lookup(entity guid.GUID) (Registration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	reg, ok := r.entries[entity]
	return reg, ok
}

// IsLive reports whether entity is currently registered.
func (r *Registrar) IsLive(entity guid.GUID) bool {
	_, ok := r.Lookup(entity)
	return ok
}

// List returns all registrations ordered by entity GUID.
func (r *Registrar) List() []Registration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Registration, 0, len(r.entries))
	for _, reg := range r.entries {
		out = append(out, reg)
	}
	sort.Slice(out, func(i, j int) bool {
		return guid.Less(out[i].Entity, out[j].Entity)
	})
	return out
}

// ListKind returns registrations of one kind, ordered by entity GUID.
func (r *Registrar) ListKind(k guid.Kind) []Registration {
	var out []Registration
	for _, reg := range r.List() {
		if reg.Kind == k {
			out = append(out, reg)
		}
	}
	return out
}

// Len returns the number of live registrations.
func (r *Registrar) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Watch adds a watcher; the returned cancel func removes it.
func (r *Registrar) Watch(w Watcher) (cancel func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.nextW
	r.nextW++
	r.watchers[id] = w
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		delete(r.watchers, id)
	}
}

// Close stops the expiry sweep and rejects further mutation.
func (r *Registrar) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	if r.sweep != nil {
		r.sweep.Stop()
	}
}

// ExpireNow runs one expiry pass immediately (tests and benchmarks).
func (r *Registrar) ExpireNow() {
	r.expire()
}

func (r *Registrar) scheduleSweepLocked() {
	if r.closed {
		return
	}
	r.sweep = r.clk.AfterFunc(r.sweepGap, func() {
		r.expire()
		r.mu.Lock()
		r.scheduleSweepLocked()
		r.mu.Unlock()
	})
}

func (r *Registrar) expire() {
	now := r.clk.Now()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	var dead []Registration
	for id, reg := range r.entries {
		if !reg.Expires.After(now) {
			dead = append(dead, reg)
			delete(r.entries, id)
		}
	}
	watchers := r.watcherListLocked()
	r.mu.Unlock()

	sort.Slice(dead, func(i, j int) bool {
		return guid.Less(dead[i].Entity, dead[j].Entity)
	})
	for _, reg := range dead {
		for _, w := range watchers {
			w.OnDeparture(reg, ReasonExpired)
		}
	}
}

func (r *Registrar) watcherListLocked() []Watcher {
	out := make([]Watcher, 0, len(r.watchers))
	ids := make([]int, 0, len(r.watchers))
	for id := range r.watchers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		out = append(out, r.watchers[id])
	}
	return out
}
