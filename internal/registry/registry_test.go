package registry

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/guid"
)

var epoch = time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)

type events struct {
	mu  sync.Mutex
	arr []Registration
	dep []Registration
	why []Reason
}

func (e *events) watcher() Watcher {
	return FuncWatcher{
		Arrival: func(r Registration) {
			e.mu.Lock()
			e.arr = append(e.arr, r)
			e.mu.Unlock()
		},
		Departure: func(r Registration, reason Reason) {
			e.mu.Lock()
			e.dep = append(e.dep, r)
			e.why = append(e.why, reason)
			e.mu.Unlock()
		},
	}
}

func (e *events) counts() (int, int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.arr), len(e.dep)
}

func newTestRegistrar() (*Registrar, *clock.Manual) {
	clk := clock.NewManual(epoch)
	r := New(Config{Clock: clk, Lease: 30 * time.Second, SweepEvery: 5 * time.Second})
	return r, clk
}

func TestRegisterLookupDeregister(t *testing.T) {
	r, _ := newTestRegistrar()
	defer r.Close()
	var ev events
	cancel := r.Watch(ev.watcher())
	defer cancel()

	id := guid.New(guid.KindEntity)
	reg, err := r.Register(id, "door")
	if err != nil {
		t.Fatal(err)
	}
	if reg.Kind != guid.KindEntity || reg.Name != "door" {
		t.Fatalf("registration = %+v", reg)
	}
	if !reg.Expires.Equal(epoch.Add(30 * time.Second)) {
		t.Fatalf("expiry = %v", reg.Expires)
	}
	if !r.IsLive(id) || r.Len() != 1 {
		t.Fatal("lookup after register failed")
	}
	if a, d := ev.counts(); a != 1 || d != 0 {
		t.Fatalf("events = %d arrivals, %d departures", a, d)
	}

	if err := r.Deregister(id); err != nil {
		t.Fatal(err)
	}
	if r.IsLive(id) {
		t.Fatal("still live after deregister")
	}
	if a, d := ev.counts(); a != 1 || d != 1 {
		t.Fatalf("events = %d arrivals, %d departures", a, d)
	}
	ev.mu.Lock()
	if ev.why[0] != ReasonDeregistered {
		t.Fatalf("reason = %v", ev.why[0])
	}
	ev.mu.Unlock()
}

func TestRegisterValidation(t *testing.T) {
	r, _ := newTestRegistrar()
	defer r.Close()
	if _, err := r.Register(guid.Nil, "x"); err == nil {
		t.Fatal("nil entity accepted")
	}
	if _, err := r.Register(guid.New(guid.KindEntity), ""); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.Deregister(guid.New(guid.KindEntity)); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("deregister unknown: %v", err)
	}
	if err := r.Renew(guid.New(guid.KindEntity)); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("renew unknown: %v", err)
	}
}

func TestReRegisterRenewsWithoutSecondArrival(t *testing.T) {
	r, clk := newTestRegistrar()
	defer r.Close()
	var ev events
	r.Watch(ev.watcher())

	id := guid.New(guid.KindEntity)
	if _, err := r.Register(id, "x"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second)
	if _, err := r.Register(id, "x"); err != nil {
		t.Fatal(err)
	}
	if a, _ := ev.counts(); a != 1 {
		t.Fatalf("arrivals = %d, want 1", a)
	}
	reg, _ := r.Lookup(id)
	if !reg.Expires.Equal(epoch.Add(40 * time.Second)) {
		t.Fatalf("expiry not renewed: %v", reg.Expires)
	}
}

func TestLeaseExpiry(t *testing.T) {
	r, clk := newTestRegistrar()
	defer r.Close()
	var ev events
	r.Watch(ev.watcher())

	id := guid.New(guid.KindEntity)
	if _, err := r.Register(id, "x"); err != nil {
		t.Fatal(err)
	}
	// Renew at 20s: lease now runs to 50s.
	clk.Advance(20 * time.Second)
	if err := r.Renew(id); err != nil {
		t.Fatal(err)
	}
	// At 45s the entity is still live (sweeps at 25,30,...,45).
	clk.Advance(25 * time.Second)
	if !r.IsLive(id) {
		t.Fatal("expired too early")
	}
	// At 55s the 50s lease has lapsed.
	clk.Advance(10 * time.Second)
	if r.IsLive(id) {
		t.Fatal("lease did not expire")
	}
	if _, d := ev.counts(); d != 1 {
		t.Fatalf("departures = %d", d)
	}
	ev.mu.Lock()
	if ev.why[0] != ReasonExpired {
		t.Fatalf("reason = %v", ev.why[0])
	}
	ev.mu.Unlock()
}

func TestExpireNow(t *testing.T) {
	r, clk := newTestRegistrar()
	defer r.Close()
	id := guid.New(guid.KindEntity)
	if _, err := r.Register(id, "x"); err != nil {
		t.Fatal(err)
	}
	// Move time past the lease without letting the sweep run (Advance fires
	// sweeps, so instead create a fresh registrar state via direct call).
	clk.Advance(29 * time.Second)
	r.ExpireNow()
	if !r.IsLive(id) {
		t.Fatal("expired before lease end")
	}
	clk.Advance(2 * time.Second)
	if r.IsLive(id) {
		t.Fatal("sweep missed expiry")
	}
}

func TestListAndListKind(t *testing.T) {
	r, _ := newTestRegistrar()
	defer r.Close()
	for i := 0; i < 5; i++ {
		if _, err := r.Register(guid.New(guid.KindEntity), "ce"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Register(guid.New(guid.KindApplication), "caa"); err != nil {
			t.Fatal(err)
		}
	}
	all := r.List()
	if len(all) != 8 {
		t.Fatalf("List len = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if !guid.Less(all[i-1].Entity, all[i].Entity) {
			t.Fatal("List not sorted")
		}
	}
	if got := r.ListKind(guid.KindApplication); len(got) != 3 {
		t.Fatalf("ListKind(application) = %d", len(got))
	}
}

func TestWatchCancel(t *testing.T) {
	r, _ := newTestRegistrar()
	defer r.Close()
	var ev events
	cancel := r.Watch(ev.watcher())
	cancel()
	if _, err := r.Register(guid.New(guid.KindEntity), "x"); err != nil {
		t.Fatal(err)
	}
	if a, _ := ev.counts(); a != 0 {
		t.Fatal("cancelled watcher notified")
	}
}

func TestCloseRejectsMutation(t *testing.T) {
	r, _ := newTestRegistrar()
	id := guid.New(guid.KindEntity)
	if _, err := r.Register(id, "x"); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if _, err := r.Register(guid.New(guid.KindEntity), "y"); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after close: %v", err)
	}
	if err := r.Renew(id); !errors.Is(err, ErrClosed) {
		t.Fatalf("renew after close: %v", err)
	}
	if err := r.Deregister(id); !errors.Is(err, ErrClosed) {
		t.Fatalf("deregister after close: %v", err)
	}
}

func TestReasonString(t *testing.T) {
	if ReasonDeregistered.String() != "deregistered" || ReasonExpired.String() != "expired" {
		t.Fatal("reason names wrong")
	}
	if Reason(9).String() == "" {
		t.Fatal("unknown reason empty")
	}
}

func TestConcurrentRegistrations(t *testing.T) {
	r := New(Config{Lease: time.Minute})
	defer r.Close()
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := guid.New(guid.KindEntity)
				if _, err := r.Register(id, "x"); err != nil {
					t.Error(err)
					return
				}
				if err := r.Renew(id); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if r.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", r.Len(), workers*per)
	}
}

func BenchmarkRegisterDeregister(b *testing.B) {
	r := New(Config{Lease: time.Minute})
	defer r.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := guid.New(guid.KindEntity)
		if _, err := r.Register(id, "x"); err != nil {
			b.Fatal(err)
		}
		if err := r.Deregister(id); err != nil {
			b.Fatal(err)
		}
	}
}
