package sensor

import (
	"sync"
	"testing"
	"time"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/location"
)

var epoch = time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)

type capture struct {
	mu  sync.Mutex
	evs []event.Event
}

func (c *capture) Publish(e event.Event) error {
	c.mu.Lock()
	c.evs = append(c.evs, e)
	c.mu.Unlock()
	return nil
}

func (c *capture) ofType(t ctxtype.Type) []event.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []event.Event
	for _, e := range c.evs {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

func TestDoorSensor(t *testing.T) {
	clk := clock.NewManual(epoch)
	s := NewDoorSensor("d-1001", location.AtPlace("l10.01"), clk)
	prof := s.Profile()
	if prof.Attributes["door"] != "d-1001" || prof.Outputs[0] != ctxtype.LocationSightingDoor {
		t.Fatalf("profile = %+v", prof)
	}
	if !prof.IsSource() {
		t.Fatal("door sensor must be a source")
	}
	if s.Door() != "d-1001" {
		t.Fatal("Door() wrong")
	}
	var pub capture
	s.Attach(&pub)
	bob := guid.New(guid.KindPerson)
	if err := s.Sight(bob, "l10.01"); err != nil {
		t.Fatal(err)
	}
	evs := pub.ofType(ctxtype.LocationSightingDoor)
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	e := evs[0]
	if e.Subject != bob {
		t.Fatal("subject wrong")
	}
	if pl, _ := e.Str("place"); pl != "l10.01" {
		t.Fatal("place wrong")
	}
	if d, _ := e.Str("door"); d != "d-1001" {
		t.Fatal("door wrong")
	}
}

func TestBaseStationPresenceTransitions(t *testing.T) {
	clk := clock.NewManual(epoch)
	s := NewBaseStation("lobby", []location.PlaceID{"lobby", "lift"}, location.AtPlace("lobby"), clk)
	var pub capture
	s.Attach(&pub)
	dev := guid.New(guid.KindDevice)

	if !s.Covers("lobby") || s.Covers("elsewhere") {
		t.Fatal("Covers wrong")
	}

	// Enter the cell.
	if err := s.Observe(dev, "lobby"); err != nil {
		t.Fatal(err)
	}
	evs := pub.ofType(ctxtype.LocationSightingWLAN)
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	if entered, _ := evs[0].Payload["entered"].(bool); !entered {
		t.Fatal("entered flag missing")
	}
	if got := s.Present(); len(got) != 1 || got[0] != dev {
		t.Fatal("presence not tracked")
	}

	// Move within the cell: re-emit, no entered flag.
	if err := s.Observe(dev, "lift"); err != nil {
		t.Fatal(err)
	}
	evs = pub.ofType(ctxtype.LocationSightingWLAN)
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if entered, _ := evs[1].Payload["entered"].(bool); entered {
		t.Fatal("re-observation flagged as entry")
	}

	// Same place again: no event.
	if err := s.Observe(dev, "lift"); err != nil {
		t.Fatal(err)
	}
	if len(pub.ofType(ctxtype.LocationSightingWLAN)) != 2 {
		t.Fatal("duplicate observation emitted")
	}

	// Leave the cell.
	if err := s.Observe(dev, "elsewhere"); err != nil {
		t.Fatal(err)
	}
	evs = pub.ofType(ctxtype.LocationSightingWLAN)
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if left, _ := evs[2].Payload["left"].(bool); !left {
		t.Fatal("left flag missing")
	}
	if len(s.Present()) != 0 {
		t.Fatal("presence not cleared")
	}

	// Never-present device outside the cell: nothing.
	if err := s.Observe(guid.New(guid.KindDevice), "elsewhere"); err != nil {
		t.Fatal(err)
	}
	if len(pub.ofType(ctxtype.LocationSightingWLAN)) != 3 {
		t.Fatal("phantom event")
	}
}

func TestTemperatureSensorDeterministic(t *testing.T) {
	clk := clock.NewManual(epoch)
	s1 := NewTemperatureSensor("a", location.AtPlace("r1"), 294, 2, 42, clk)
	s2 := NewTemperatureSensor("b", location.AtPlace("r1"), 294, 2, 42, clk)
	for i := 0; i < 20; i++ {
		if s1.Read() != s2.Read() {
			t.Fatal("same seed produced different readings")
		}
	}
	// Readings stay within base ± (amp + noise).
	s3 := NewTemperatureSensor("c", location.AtPlace("r1"), 294, 2, 7, clk)
	for i := 0; i < 100; i++ {
		v := s3.Read()
		if v < 294-2.3 || v > 294+2.3 {
			t.Fatalf("reading %v out of envelope", v)
		}
	}
	var pub capture
	s3.Attach(&pub)
	if err := s3.Tick(); err != nil {
		t.Fatal(err)
	}
	evs := pub.ofType(ctxtype.TemperatureKelvin)
	if len(evs) != 1 {
		t.Fatal("Tick did not emit")
	}
	if _, ok := evs[0].Float("value"); !ok {
		t.Fatal("reading payload missing")
	}
}

func TestPrinterLifecycle(t *testing.T) {
	clk := clock.NewManual(epoch)
	p := NewPrinter("P1", location.AtPlace("l10.corridor"), clk)
	var pub capture
	p.Attach(&pub)

	if p.State() != PrinterIdle || p.QueueLen() != 0 {
		t.Fatal("initial state wrong")
	}
	job, err := p.Submit("thesis.pdf")
	if err != nil {
		t.Fatal(err)
	}
	if job == "" || p.State() != PrinterBusy || p.QueueLen() != 1 {
		t.Fatal("submit state wrong")
	}
	// Profile attributes mirror live state (resolver constraints read them).
	prof := p.Profile()
	if prof.Attributes["status"] != "busy" || prof.Attributes["queue"] != "1" {
		t.Fatalf("profile attrs = %v", prof.Attributes)
	}
	// Status + profile-update events emitted.
	if len(pub.ofType(ctxtype.PrinterStatus)) != 1 || len(pub.ofType(ctxtype.ProfileUpdate)) != 1 {
		t.Fatal("events not emitted on submit")
	}

	done, ok := p.CompleteOne()
	if !ok || done != job {
		t.Fatal("complete wrong")
	}
	if p.State() != PrinterIdle {
		t.Fatal("not idle after queue drained")
	}
	if _, ok := p.CompleteOne(); ok {
		t.Fatal("completed from empty queue")
	}

	// Out of paper: submits fail, state reflected.
	p.SetOutOfPaper(true)
	if p.State() != PrinterOutOfPaper {
		t.Fatal("paper state wrong")
	}
	if _, err := p.Submit("x"); err == nil {
		t.Fatal("submit accepted while out of paper")
	}
	p.SetOutOfPaper(false)
	if p.State() != PrinterIdle {
		t.Fatal("refill state wrong")
	}
}

func TestPrinterServe(t *testing.T) {
	clk := clock.NewManual(epoch)
	p := NewPrinter("P1", location.AtPlace("r1"), clk)
	var pub capture
	p.Attach(&pub)

	res, err := p.Serve("submit", map[string]any{"doc": "a.pdf"})
	if err != nil {
		t.Fatal(err)
	}
	if res["job"] == "" {
		t.Fatal("no job id")
	}
	res, err = p.Serve("status", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res["status"] != "busy" || res["queue"] != 1 {
		t.Fatalf("status = %v", res)
	}
	if _, err := p.Serve("submit", nil); err == nil {
		t.Fatal("submit without doc accepted")
	}
	if _, err := p.Serve("complete", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Serve("complete", nil); err == nil {
		t.Fatal("complete on empty queue accepted")
	}
	if _, err := p.Serve("bogus", nil); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestPrinterOutOfPaperWithQueueReturnsToBusy(t *testing.T) {
	clk := clock.NewManual(epoch)
	p := NewPrinter("P2", location.AtPlace("r1"), clk)
	var pub capture
	p.Attach(&pub)
	if _, err := p.Submit("doc"); err != nil {
		t.Fatal(err)
	}
	p.SetOutOfPaper(true)
	p.SetOutOfPaper(false)
	if p.State() != PrinterBusy {
		t.Fatalf("state = %v, want busy (job still queued)", p.State())
	}
}
