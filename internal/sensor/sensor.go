// Package sensor provides the simulated device substrate standing in for
// the physical sensors of the paper's deployment (door-mounted ID badge
// readers, W-LAN base stations detecting PDAs, temperature probes and
// printers).
//
// The substitution preserves the behaviour that matters to the middleware:
// the infrastructure only ever sees typed events arriving through the same
// CE interfaces a hardware driver would use, so discovery, registration,
// composition and dissemination exercise identical code paths (see
// DESIGN.md, substitutions table). internal/mobility drives these sensors
// from a simulated world; tests drive them directly.
//
// Every sensor is a Context Entity (embeds entity.Base) with a truthful
// Profile, so the Query Resolver can discover and bind them.
package sensor

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/entity"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/profile"
)

// DoorSensor models a door-mounted badge reader: "doorSensor CEs produce
// events indicating when an object (equipped with ID tag) passes through
// them" (Section 3.2).
type DoorSensor struct {
	*entity.Base
	door string
}

// NewDoorSensor builds the sensor for a named door. clk may be nil.
func NewDoorSensor(door string, at location.Ref, clk clock.Clock) *DoorSensor {
	prof := profile.Profile{
		Name:     "door-" + door,
		Outputs:  []ctxtype.Type{ctxtype.LocationSightingDoor},
		Quality:  0.9,
		Location: at,
		Attributes: map[string]string{
			"kind": "door-sensor",
			"door": door,
		},
	}
	s := &DoorSensor{door: door}
	s.Base = entity.NewBase(guid.KindDevice, prof, clk)
	return s
}

// Door returns the door name.
func (s *DoorSensor) Door() string { return s.door }

// Sight reports a badge passing through the door into the given place,
// emitting a location.sighting.door event for the badge's wearer.
func (s *DoorSensor) Sight(badge guid.GUID, entering location.PlaceID) error {
	return s.Emit(ctxtype.LocationSightingDoor, badge, map[string]any{
		"door":  s.door,
		"place": string(entering),
	})
}

// BaseStation models a W-LAN access point whose effective operating range
// defines a Range boundary (Section 3: "the effective operating range of a
// particular network type"). It produces coarse sightings for devices
// entering its cell and departure notices for devices leaving it.
type BaseStation struct {
	*entity.Base
	cell map[location.PlaceID]location.Ref

	mu      sync.Mutex
	present map[guid.GUID]location.PlaceID
}

// NewBaseStation builds a station covering the given places.
func NewBaseStation(name string, cell []location.PlaceID, at location.Ref, clk clock.Clock) *BaseStation {
	prof := profile.Profile{
		Name:     "basestation-" + name,
		Outputs:  []ctxtype.Type{ctxtype.LocationSightingWLAN},
		Quality:  0.6, // cell-level precision only
		Location: at,
		Attributes: map[string]string{
			"kind": "basestation",
		},
	}
	s := &BaseStation{
		cell:    make(map[location.PlaceID]location.Ref, len(cell)),
		present: make(map[guid.GUID]location.PlaceID),
	}
	for _, p := range cell {
		s.cell[p] = location.AtPlace(p)
	}
	s.Base = entity.NewBase(guid.KindDevice, prof, clk)
	return s
}

// Covers reports whether the station's cell includes the place.
func (s *BaseStation) Covers(p location.PlaceID) bool {
	_, ok := s.cell[p]
	return ok
}

// Observe reports a device's current place. Entering the cell emits a WLAN
// sighting; leaving it emits a departure-flagged sighting. Movement within
// the cell re-emits (signal strength changes would, too).
func (s *BaseStation) Observe(device guid.GUID, at location.PlaceID) error {
	inCell := s.Covers(at)
	s.mu.Lock()
	prev, wasPresent := s.present[device]
	switch {
	case inCell:
		s.present[device] = at
	case wasPresent:
		delete(s.present, device)
	}
	s.mu.Unlock()

	switch {
	case inCell && (!wasPresent || prev != at):
		return s.Emit(ctxtype.LocationSightingWLAN, device, map[string]any{
			"place":   string(at),
			"entered": !wasPresent,
		})
	case !inCell && wasPresent:
		return s.Emit(ctxtype.LocationSightingWLAN, device, map[string]any{
			"place": string(prev),
			"left":  true,
		})
	}
	return nil
}

// Present returns the devices currently in the cell, sorted.
func (s *BaseStation) Present() []guid.GUID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]guid.GUID, 0, len(s.present))
	for d := range s.present {
		out = append(out, d)
	}
	guid.Sort(out)
	return out
}

// TemperatureSensor emits periodic Kelvin readings (interpreters downstream
// convert to Celsius — exercising the type-conversion path).
type TemperatureSensor struct {
	*entity.Base
	mu   sync.Mutex
	base float64 // Kelvin baseline
	amp  float64
	rng  *rand.Rand
	tick int
}

// NewTemperatureSensor builds a probe with a sinusoidal daily cycle plus
// seeded noise around base Kelvin.
func NewTemperatureSensor(name string, at location.Ref, baseKelvin, amplitude float64, seed int64, clk clock.Clock) *TemperatureSensor {
	prof := profile.Profile{
		Name:     "thermo-" + name,
		Outputs:  []ctxtype.Type{ctxtype.TemperatureKelvin},
		Quality:  0.8,
		Location: at,
		Attributes: map[string]string{
			"kind": "temperature-sensor",
		},
	}
	s := &TemperatureSensor{
		base: baseKelvin,
		amp:  amplitude,
		rng:  rand.New(rand.NewSource(seed)),
	}
	s.Base = entity.NewBase(guid.KindDevice, prof, clk)
	return s
}

// Read produces the next reading without emitting.
func (s *TemperatureSensor) Read() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	cycle := s.amp * math.Sin(float64(s.tick)/24*2*math.Pi)
	noise := (s.rng.Float64() - 0.5) * 0.4
	return s.base + cycle + noise
}

// Tick reads and emits one sample.
func (s *TemperatureSensor) Tick() error {
	return s.Emit(ctxtype.TemperatureKelvin, guid.Nil, map[string]any{
		"value": s.Read(),
		"unit":  "kelvin",
	})
}

// PrinterState enumerates printer availability.
type PrinterState string

// Printer states (the Section 5 CAPA scenario distinguishes busy, out of
// paper, and idle printers).
const (
	PrinterIdle       PrinterState = "idle"
	PrinterBusy       PrinterState = "busy"
	PrinterOutOfPaper PrinterState = "out-of-paper"
)

// Printer models a print device: a CE with a "printer" advertisement whose
// submit operation queues jobs, and whose profile attributes (status,
// queue) track live state so Which-clause constraints see the truth.
type Printer struct {
	*entity.Base

	mu    sync.Mutex
	state PrinterState
	queue []string
	jobs  int
}

// NewPrinter builds an idle printer at the given location.
func NewPrinter(name string, at location.Ref, clk clock.Clock) *Printer {
	prof := profile.Profile{
		Name:     name,
		Outputs:  []ctxtype.Type{ctxtype.PrinterStatus},
		Location: at,
		Attributes: map[string]string{
			"kind":   "printer",
			"status": string(PrinterIdle),
			"queue":  "0",
		},
		Advertisement: &profile.Advertisement{
			Interface:  "printer",
			Operations: []string{"submit", "status", "complete"},
		},
	}
	p := &Printer{state: PrinterIdle}
	p.Base = entity.NewBase(guid.KindDevice, prof, clk)
	return p
}

// State returns the current availability.
func (p *Printer) State() PrinterState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// QueueLen returns the number of queued jobs.
func (p *Printer) QueueLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// SetOutOfPaper toggles the paper condition (the P2 scenario).
func (p *Printer) SetOutOfPaper(out bool) {
	p.mu.Lock()
	if out {
		p.state = PrinterOutOfPaper
	} else if len(p.queue) > 0 {
		p.state = PrinterBusy
	} else {
		p.state = PrinterIdle
	}
	p.mu.Unlock()
	p.syncProfile()
	p.emitStatus()
}

// Submit queues a document; it fails when the printer is out of paper.
func (p *Printer) Submit(doc string) (jobID string, err error) {
	p.mu.Lock()
	if p.state == PrinterOutOfPaper {
		p.mu.Unlock()
		return "", fmt.Errorf("sensor: printer %s is out of paper", p.Profile().Name)
	}
	p.jobs++
	jobID = fmt.Sprintf("job-%d", p.jobs)
	p.queue = append(p.queue, jobID)
	p.state = PrinterBusy
	p.mu.Unlock()
	p.syncProfile()
	p.emitStatus()
	return jobID, nil
}

// CompleteOne finishes the oldest queued job (the simulated print engine).
func (p *Printer) CompleteOne() (jobID string, ok bool) {
	p.mu.Lock()
	if len(p.queue) == 0 {
		p.mu.Unlock()
		return "", false
	}
	jobID = p.queue[0]
	p.queue = p.queue[1:]
	if len(p.queue) == 0 && p.state == PrinterBusy {
		p.state = PrinterIdle
	}
	p.mu.Unlock()
	p.syncProfile()
	p.emitStatus()
	return jobID, true
}

// Serve implements the "printer" advertisement.
func (p *Printer) Serve(op string, args map[string]any) (map[string]any, error) {
	switch op {
	case "submit":
		doc, _ := args["doc"].(string)
		if doc == "" {
			return nil, fmt.Errorf("sensor: submit needs doc")
		}
		id, err := p.Submit(doc)
		if err != nil {
			return nil, err
		}
		return map[string]any{"job": id}, nil
	case "status":
		p.mu.Lock()
		defer p.mu.Unlock()
		return map[string]any{
			"status": string(p.state),
			"queue":  len(p.queue),
		}, nil
	case "complete":
		id, ok := p.CompleteOne()
		if !ok {
			return nil, fmt.Errorf("sensor: queue empty")
		}
		return map[string]any{"job": id}, nil
	default:
		return nil, fmt.Errorf("%w: %q", entity.ErrNoService, op)
	}
}

// Prime re-emits the current status (configuration.Primer): new
// subscribers get an immediate snapshot.
func (p *Printer) Prime() { p.emitStatus() }

// syncProfile mirrors live state into profile attributes.
func (p *Printer) syncProfile() {
	p.mu.Lock()
	state := p.state
	qlen := len(p.queue)
	p.mu.Unlock()
	p.UpdateProfile(func(prof *profile.Profile) {
		prof.Attributes["status"] = string(state)
		prof.Attributes["queue"] = fmt.Sprintf("%d", qlen)
	})
}

// emitStatus publishes the printer.status event (and a profile.update so
// the Range re-reads attributes).
func (p *Printer) emitStatus() {
	p.mu.Lock()
	state := p.state
	qlen := len(p.queue)
	p.mu.Unlock()
	_ = p.Emit(ctxtype.PrinterStatus, guid.Nil, map[string]any{
		"status": string(state),
		"queue":  qlen,
	})
	_ = p.Emit(ctxtype.ProfileUpdate, p.ID(), map[string]any{
		"status": string(state),
		"queue":  qlen,
	})
}

var (
	_ entity.CE = (*DoorSensor)(nil)
	_ entity.CE = (*BaseStation)(nil)
	_ entity.CE = (*TemperatureSensor)(nil)
	_ entity.CE = (*Printer)(nil)
)
