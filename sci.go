// Package sci is the public API of the Strathclyde Context Infrastructure
// (SCI) reproduction: a middleware for generalised context management after
// Glassey et al., "Towards a Middleware for Generalised Context
// Management" (Middleware 2003 workshop on Middleware for Pervasive and
// Ad Hoc Computing).
//
// # Architecture
//
// SCI is organised into two layers. The lower layer is the Range: an area
// described in logical and/or physical terms, governed by a Context Server
// that manages Context Entities (CEs — producers/consumers of typed
// context events), Context Aware Applications (CAAs — query submitters),
// and the Context Utilities (Registrar, Profile Manager, Event Mediator,
// Query Resolver, Location Service, Range Service). The upper layer is the
// SCINET: an overlay network of Ranges addressed by GUID, across which
// queries are forwarded to the Range covering the queried area.
//
// # Quick start
//
//	rng := sci.NewRange(sci.RangeConfig{Name: "lab"})
//	defer rng.Close()
//
//	thermo := sci.NewTemperatureSensor("lab-probe", sci.Ref{}, 294, 2, 1, nil)
//	_ = rng.AddEntity(thermo)
//
//	app := sci.NewCAA("dashboard", func(e sci.Event) {
//	    fmt.Println("reading:", e.Payload["value"])
//	}, nil)
//	_ = rng.AddApplication(app)
//
//	q := sci.NewQuery(app.ID(), sci.What{Pattern: sci.TemperatureKelvin}, sci.ModeSubscribe)
//	_, _ = rng.Submit(q)
//	_ = thermo.Tick() // a reading flows to the dashboard
//
// See examples/ for complete programs, including the paper's CAPA printing
// scenario.
package sci

import (
	"sci/internal/clock"
	"sci/internal/ctxtype"
	"sci/internal/entity"
	"sci/internal/event"
	"sci/internal/eventbus"
	"sci/internal/flow"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/mediator"
	"sci/internal/mobility"
	"sci/internal/profile"
	"sci/internal/query"
	"sci/internal/scinet"
	"sci/internal/sensor"
	"sci/internal/server"
	"sci/internal/sim"
	"sci/internal/transport"
	"sci/internal/wire"
)

// Identity.
type (
	// GUID is the 128-bit identifier every SCI entity carries.
	GUID = guid.GUID
	// Kind classifies an entity GUID.
	Kind = guid.Kind
)

// Entity kinds.
const (
	KindPerson      = guid.KindPerson
	KindSoftware    = guid.KindSoftware
	KindPlace       = guid.KindPlace
	KindDevice      = guid.KindDevice
	KindArtifact    = guid.KindArtifact
	KindApplication = guid.KindApplication
	KindEntity      = guid.KindEntity
)

// NewGUID mints a fresh identifier.
func NewGUID(k Kind) GUID { return guid.New(k) }

// ParseGUID parses the canonical "kind:hex32" form.
func ParseGUID(s string) (GUID, error) { return guid.Parse(s) }

// Context types and events.
type (
	// ContextType names a kind of contextual information.
	ContextType = ctxtype.Type
	// TypeRegistry holds types, equivalences and converters.
	TypeRegistry = ctxtype.Registry
	// Event is one typed context observation.
	Event = event.Event
	// EventFilter selects events.
	EventFilter = event.Filter
)

// Core context types.
const (
	LocationPosition     = ctxtype.LocationPosition
	LocationSighting     = ctxtype.LocationSighting
	LocationSightingDoor = ctxtype.LocationSightingDoor
	LocationSightingWLAN = ctxtype.LocationSightingWLAN
	PathRoute            = ctxtype.PathRoute
	TemperatureCelsius   = ctxtype.TemperatureCelsius
	TemperatureKelvin    = ctxtype.TemperatureKelvin
	PrinterStatus        = ctxtype.PrinterStatus
	EntityArrival        = ctxtype.EntityArrival
	EntityDeparture      = ctxtype.EntityDeparture
)

// NewTypeRegistry returns a registry pre-loaded with the core vocabulary.
func NewTypeRegistry() *TypeRegistry { return ctxtype.NewRegistry() }

// Location.
type (
	// Ref is the intermediate location language (geometric, hierarchical
	// and/or topological).
	Ref = location.Ref
	// PlaceID names a topological place.
	PlaceID = location.PlaceID
	// LocationPath is a hierarchical containment path.
	LocationPath = location.Path
	// Place is ground truth about one place.
	Place = location.Place
	// Link connects two places.
	Link = location.Link
	// LocationMap is a deployment area's ground truth.
	LocationMap = location.Map
	// Route is a computed path.
	Route = location.Route
)

// Location constructors.
var (
	AtPlace = location.AtPlace
	AtPath  = location.AtPath
	AtPoint = location.AtPoint
	NewMap  = location.NewMap
)

// Profiles.
type (
	// Profile is a Context Entity's metadata.
	Profile = profile.Profile
	// Advertisement describes a CE's well-known service interface.
	Advertisement = profile.Advertisement
)

// Queries (the What/Where/When/Which/Mode model of the paper's Fig 6).
type (
	Query     = query.Query
	What      = query.What
	Where     = query.Where
	When      = query.When
	Which     = query.Which
	QueryMode = query.Mode
)

// Query modes.
const (
	ModeProfile       = query.ModeProfile
	ModeSubscribe     = query.ModeSubscribe
	ModeOnce          = query.ModeOnce
	ModeAdvertisement = query.ModeAdvertisement
)

// Which criteria and implicit Where expressions.
const (
	CriterionClosest        = query.CriterionClosest
	CriterionShortestQueue  = query.CriterionShortestQueue
	CriterionHighestQuality = query.CriterionHighestQuality
	ImplicitClosest         = query.ImplicitClosest
	ImplicitSameRoom        = query.ImplicitSameRoom
	ImplicitSameFloor       = query.ImplicitSameFloor
)

// NewQuery builds a query with a fresh id.
var NewQuery = query.New

// ParseQueryText parses the compact text query form.
var ParseQueryText = query.ParseText

// Components.
type (
	// CE is the Context Entity interface.
	CE = entity.CE
	// CAA is the Context Aware Application base.
	CAA = entity.CAA
	// ObjLocationCE interprets sightings into positions.
	ObjLocationCE = entity.ObjLocationCE
	// PathCE computes routes between two watched subjects.
	PathCE = entity.PathCE
)

// Component constructors.
var (
	NewCAA           = entity.NewCAA
	NewFuncCE        = entity.NewFuncCE
	NewObjLocationCE = entity.NewObjLocationCE
	NewPathCE        = entity.NewPathCE
	NewAggregatorCE  = entity.NewAggregatorCE
	NewInterpreterCE = entity.NewInterpreterCE
)

// Simulated sensors (the hardware substitution layer).
type (
	DoorSensor        = sensor.DoorSensor
	BaseStation       = sensor.BaseStation
	TemperatureSensor = sensor.TemperatureSensor
	Printer           = sensor.Printer
)

// Sensor constructors.
var (
	NewDoorSensor        = sensor.NewDoorSensor
	NewBaseStation       = sensor.NewBaseStation
	NewTemperatureSensor = sensor.NewTemperatureSensor
	NewPrinter           = sensor.NewPrinter
)

// Range (Context Server) — the lower layer.
type (
	// Range is one administrative area with its Context Server. Events are
	// injected one at a time with Publish or, amortising dispatch-index
	// resolution and queue locking across a burst, in batches with
	// PublishAll.
	Range = server.Range
	// RangeConfig parameterises NewRange, including EventShards (the Event
	// Mediator's dispatch lock-stripe count), BatchMaxEvents /
	// BatchMaxDelay (the per-endpoint outbound wire coalescer: up to
	// BatchMaxEvents remote deliveries ride one event.batch message,
	// flushed after at most BatchMaxDelay) and AdaptiveBatching (the
	// coalescers derive effective batch size and delay from each
	// endpoint's observed arrival rate between the configured floors and
	// those ceilings).
	RangeConfig = server.Config
	// QueryResult is the synchronous answer to Submit.
	QueryResult = server.Result
)

// NewRange builds and starts a Range.
var NewRange = server.New

// Event dispatch introspection. The Event Mediator routes publishes through
// a sharded two-tier subscription index; these snapshots (via
// Range.DispatchStats and Range.Mediator) expose its throughput, drops and
// index effectiveness. Drops are additionally attributed per publisher
// (Range.DispatchDropsFor / Range.DispatchDropsBySource): every event
// discarded from a full subscription queue counts against the endpoint
// whose traffic caused it, which is the figure remote flow-credit acks
// carry.
type (
	// DispatchStats counts bus-wide publishes, deliveries, drops and
	// index-hit/residual-scan work.
	DispatchStats = eventbus.Stats
	// DispatchShardStats is one dispatch lock stripe's counters.
	DispatchShardStats = eventbus.ShardStats
)

// DefaultEventShards is the dispatch stripe count used when
// RangeConfig.EventShards is zero.
const DefaultEventShards = eventbus.DefaultShards

// DefaultBatchMaxDelay is the outbound coalescer's flush deadline when
// RangeConfig.BatchMaxEvents enables batching without naming a delay.
const DefaultBatchMaxDelay = server.DefaultBatchMaxDelay

// Flow control — the unified outbound coalescing layer (internal/flow)
// shared by the Range Service's per-endpoint delivery queues and the
// SCINET fabric's per-peer and fan-out queues.
type (
	// AdaptiveBatching configures rate-derived batch sizing
	// (RangeConfig.AdaptiveBatching): idle endpoints flush
	// near-immediately while hot ones ride full batches.
	AdaptiveBatching = flow.Adaptive
	// FlowControlStats is the per-Range sink of outbound flow-control
	// accounting — flushes, receiver-reported drops, throttle state —
	// reached via Range.FlowStats and surfaced as the
	// remote.backpressure.* gauges through Range.FillMetrics and the
	// dispatch.stats infrastructure call (and, fleet-wide, through
	// Fabric.FleetDispatchStats).
	FlowControlStats = flow.SharedStats
	// FlowRateTracker is the EWMA arrival-rate estimator the adaptive
	// coalescers and the connector's self-sizing delivery queue share.
	FlowRateTracker = flow.RateTracker
	// PublisherQuota is the per-publisher enforcement config
	// (RangeConfig.PublisherQuota): token-bucket admission at the publish
	// edge (Rate events/s up to Burst per source, shed-and-count or
	// Reject with ErrOverQuota) and weighted-fair flush shares (Weights)
	// inside the outbound coalescers, so one flooding tenant saturates
	// its own share of a Range and its links rather than its neighbours'.
	// Rejections and targeted sheds are attributed per source and
	// surfaced as the quota_rejected_from_* / throttled_by_source_*
	// gauges through Range.FillMetrics.
	PublisherQuota = server.PublisherQuota
	// OverQuotaError carries the offending publisher and rejected count
	// when PublisherQuota.Reject refuses a publish; it unwraps to
	// ErrOverQuota.
	OverQuotaError = eventbus.OverQuotaError
)

// ErrOverQuota is the sentinel matched by errors.Is for publishes refused
// under PublisherQuota.Reject.
var ErrOverQuota = eventbus.ErrOverQuota

// NewFlowRateTracker builds a rate estimator with the given half-life.
var NewFlowRateTracker = flow.NewRateTracker

// SCINET — the upper layer.
type (
	// Fabric is a Range's presence in the SCINET overlay. Beyond query
	// forwarding it provides cross-range event fan-out: AddInterest /
	// SubscribeRemote announce an event filter to the SCINET, and matching
	// events published in sibling Ranges arrive in coalesced
	// scinet.event_batch overlay messages (loop-suppressed via an
	// origin-fabric id and hop set), ingested through Range.PublishAll.
	// Flow credit crosses the overlay in both directions: receivers ack
	// with the drops the sender's traffic caused (per-publisher
	// attribution), relays fold the congestion they observe downstream
	// into the acks they send upstream (Fabric.DownstreamDrops), so a
	// multi-hop chain throttles at its origin (Fabric.FanoutPenalty).
	Fabric = scinet.Fabric
	// Subscription is a live event subscription record (returned by
	// Fabric.SubscribeRemote; cancel through Fabric.UnsubscribeRemote so
	// the announced interest is withdrawn with it).
	Subscription = mediator.Record
	// FleetStats is the SCINET-wide dispatch.stats rollup returned by
	// Fabric.FleetDispatchStats.
	FleetStats = scinet.FleetStats
	// FleetRangeStats is one Range's snapshot inside a FleetStats rollup.
	FleetRangeStats = scinet.RangeStats
	// HierarchyConfig attaches a Fabric to the super-peer interest
	// hierarchy (Fabric.SetHierarchy): leaves summarize their interests
	// into Bloom/prefix digests announced only to their super-peer, and
	// super-peers aggregate and route event batches along the tree, so
	// grid-scale fleets keep per-fabric interest state and per-publish
	// message cost sublinear in fleet size. Auto-flat below MinFleet.
	HierarchyConfig = scinet.HierarchyConfig
)

// NewFabric attaches a Range to a SCINET over a transport network.
var NewFabric = scinet.NewFabric

// Transports.
type (
	// Network moves wire messages between GUID-addressed endpoints.
	Network = transport.Network
	// MemoryNetwork is the in-process simulation network.
	MemoryNetwork = transport.Memory
	// TransportConfig selects and parameterises a transport backend for
	// NewNetwork: Backend names a registered builder ("memory", "tcp"),
	// Codec sets the network's default wire codec.
	TransportConfig = transport.Config
	// WireCodec names a negotiated wire encoding: CodecBinary (the
	// zero-copy batch path) or CodecJSON (the legacy line-delimited form
	// every peer understands).
	WireCodec = wire.Codec
)

// Wire codecs. TCP endpoints negotiate per connection at setup — a hello
// exchange settles on binary when both ends support it and falls back to
// JSON for legacy peers — so mixed fleets interoperate; forcing CodecJSON
// on an endpoint (or network default) skips negotiation entirely.
const (
	CodecBinary = wire.CodecBinary
	CodecJSON   = wire.CodecJSON
)

// NewNetwork builds a transport from a declarative config via the backend
// factory (empty Backend means "memory"). Additional backends can be
// registered with transport.Register.
var NewNetwork = transport.New

// NewMemoryNetwork builds an in-process network (zero latency by default).
func NewMemoryNetwork() *MemoryNetwork {
	return transport.NewMemory(transport.MemoryConfig{})
}

// NewTCPNetwork builds a TCP network with its own directory.
func NewTCPNetwork() *transport.TCP { return transport.NewTCP(nil) }

// Simulation world.
type (
	// World is the simulated ground truth for mobility.
	World = mobility.World
	// Actor is a mobile person or device.
	Actor = mobility.Actor
	// Building is a generated synthetic building.
	Building = sim.Building
)

// Simulation constructors.
var (
	NewWorld    = mobility.NewWorld
	NewBuilding = sim.NewBuilding
)

// Clock is the injectable time source.
type Clock = clock.Clock

// RealClock returns the system clock.
func RealClock() Clock { return clock.Real() }

// NewManualClock returns a deterministic test clock.
var NewManualClock = clock.NewManual
