package sci

import (
	"testing"
	"time"
)

// TestFacadeQuickstart exercises the package-documented quick-start flow
// end to end through the public API only.
func TestFacadeQuickstart(t *testing.T) {
	rng := NewRange(RangeConfig{Name: "lab"})
	defer rng.Close()

	thermo := NewTemperatureSensor("lab-probe", Ref{}, 294, 2, 1, nil)
	if err := rng.AddEntity(thermo); err != nil {
		t.Fatal(err)
	}
	app := NewCAA("dashboard", nil, nil)
	if err := rng.AddApplication(app); err != nil {
		t.Fatal(err)
	}
	q := NewQuery(app.ID(), What{Pattern: TemperatureKelvin}, ModeSubscribe)
	if _, err := rng.Submit(q); err != nil {
		t.Fatal(err)
	}
	if err := thermo.Tick(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for app.PendingEvents() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no reading delivered")
		}
		time.Sleep(time.Millisecond)
	}
	evs := app.TakeEvents()
	if evs[0].Type != TemperatureKelvin {
		t.Fatalf("delivered %v", evs[0].Type)
	}
	if _, ok := evs[0].Float("value"); !ok {
		t.Fatal("reading missing value")
	}
}

// TestFacadeInterpreterChain composes a Kelvin sensor with the built-in
// Kelvin→Celsius interpreter entirely via the public API.
func TestFacadeInterpreterChain(t *testing.T) {
	types := NewTypeRegistry()
	rng := NewRange(RangeConfig{Name: "lab", Types: types})
	defer rng.Close()

	thermo := NewTemperatureSensor("probe", Ref{}, 294, 2, 1, nil)
	if err := rng.AddEntity(thermo); err != nil {
		t.Fatal(err)
	}
	conv := NewInterpreterCE("k2c", types, TemperatureKelvin, TemperatureCelsius, nil)
	if err := rng.AddEntity(conv); err != nil {
		t.Fatal(err)
	}
	app := NewCAA("celsius-app", nil, nil)
	if err := rng.AddApplication(app); err != nil {
		t.Fatal(err)
	}
	q := NewQuery(app.ID(), What{Pattern: TemperatureCelsius}, ModeSubscribe)
	if _, err := rng.Submit(q); err != nil {
		t.Fatal(err)
	}
	if err := thermo.Tick(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for app.PendingEvents() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no converted reading delivered")
		}
		time.Sleep(time.Millisecond)
	}
	evs := app.TakeEvents()
	if evs[0].Type != TemperatureCelsius {
		t.Fatalf("delivered %v", evs[0].Type)
	}
	v, _ := evs[0].Float("value")
	if v < 15 || v > 28 {
		t.Fatalf("celsius = %v, want ≈ 21", v)
	}
}

func TestFacadeGUIDHelpers(t *testing.T) {
	g := NewGUID(KindPerson)
	back, err := ParseGUID(g.String())
	if err != nil || back != g {
		t.Fatal("GUID helpers broken")
	}
}
