package sci

// One benchmark per experiment in DESIGN.md's per-figure index. Each wraps
// the deterministic harness in internal/sim so `go test -bench=.` at the
// repository root regenerates every table/figure behaviour of the paper.
// cmd/scibench prints the same data as tables.

import (
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"sci/internal/ctxtype"
	"sci/internal/event"
	"sci/internal/eventbus"
	"sci/internal/guid"
	"sci/internal/location"
	"sci/internal/scinet"
	"sci/internal/server"
	"sci/internal/sim"
	"sci/internal/transport"
	"sci/internal/wire"
)

var t0 = time.Date(2003, 6, 17, 9, 0, 0, 0, time.UTC)

// BenchmarkE1_OverlayVsHierarchy — Fig 1 / §3 routing claim: overlay avoids
// the hierarchy's root bottleneck at comparable hop counts.
func BenchmarkE1_OverlayVsHierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunE1([]int{64}, 500, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		b.ReportMetric(float64(r.OverlayHopsP50), "overlay-hops-p50")
		b.ReportMetric(r.OverlayRelayRatio, "overlay-max/mean-load")
		b.ReportMetric(float64(r.TreeHopsP50), "tree-hops-p50")
		b.ReportMetric(r.TreeRelayRatio, "tree-max/mean-load")
	}
}

// BenchmarkE2_RangeChurn — Fig 2: registration and event throughput of one
// Range's Context Server.
func BenchmarkE2_RangeChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunE2([]int{500})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].RegisterPerSec, "registrations/s")
		b.ReportMetric(rows[0].EventsPerSec, "events/s")
	}
}

// BenchmarkE3_Composition — Fig 3: automatic configuration building by
// backward-chaining type matching.
func BenchmarkE3_Composition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunE3([]int{1000}, 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].ResolveTime.Microseconds()), "resolve-µs")
		b.ReportMetric(float64(rows[0].ReuseHits), "cache-hits")
	}
}

// BenchmarkE4_EventDispatch — Fig 4: delivery through the abstract CE/CAA
// interfaces at fan-out 100, plus a dispatch grid that measures the raw
// Event Mediator hot path: per-publish cost across total-subscription counts
// for exact-type filters (which the subscription index resolves without
// scanning unrelated subscriptions) and wildcard filters (which take the
// residual per-event matching path).
func BenchmarkE4_EventDispatch(b *testing.B) {
	b.Run("Fanout100", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := sim.RunE4([]int{100}, 100)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rows[0].EventsPerSec, "deliveries/s")
		}
	})
	for _, mode := range []string{"exact", "wildcard"} {
		for _, subs := range []int{1, 100, 10000} {
			b.Run(fmt.Sprintf("%s/subs=%d", mode, subs), func(b *testing.B) {
				benchDispatch(b, mode, subs)
			})
		}
	}
}

// benchDispatch subscribes n consumers and measures Publish. In exact mode
// each consumer filters on its own concrete context type and every publish
// matches exactly one subscription, so the cost of a well-indexed dispatch
// is independent of n. In wildcard mode every consumer matches every event
// (inherent fan-out: cost necessarily grows with n).
func benchDispatch(b *testing.B, mode string, n int) {
	bus := eventbus.New(nil)
	defer bus.Close()
	for i := 0; i < n; i++ {
		f := event.Filter{Type: ctxtype.Type(fmt.Sprintf("bench.sub%d", i))}
		if mode == "wildcard" {
			f = event.Filter{}
		}
		if _, err := bus.Subscribe(f, func(event.Event) {}, eventbus.WithQueueLen(64)); err != nil {
			b.Fatal(err)
		}
	}
	e := event.New("bench.sub0", guid.New(guid.KindDevice), 0, t0, nil)
	// Warm the dispatch path (index key cache, target pools) before timing.
	if err := bus.Publish(e); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bus.Publish(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchPublish — batch-native delivery (PR 2): PublishAll resolves
// the dispatch index once per run of same-type events and appends each
// subscriber's share of a run under one ring lock with one wakeup. The grid
// crosses batch size with subscriber count; batch=1 is the per-event
// Publish baseline, so the events/s ratio within a subs row is the
// amortisation factor.
func BenchmarkBatchPublish(b *testing.B) {
	for _, subs := range []int{1, 100} {
		for _, batch := range []int{1, 16, 64, 256} {
			b.Run(fmt.Sprintf("subs=%d/batch=%d", subs, batch), func(b *testing.B) {
				benchBatchPublish(b, subs, batch)
			})
		}
	}
}

// benchBatchPublish subscribes n consumers to one concrete type (full
// fan-out: every event reaches every subscriber) and measures the publish
// side of PublishAll against per-event Publish.
func benchBatchPublish(b *testing.B, subs, batch int) {
	bus := eventbus.New(nil)
	defer bus.Close()
	qlen := 4 * batch
	if qlen < 64 {
		qlen = 64
	}
	for i := 0; i < subs; i++ {
		if _, err := bus.Subscribe(event.Filter{Type: "bench.batch"}, func(event.Event) {},
			eventbus.WithQueueLen(qlen)); err != nil {
			b.Fatal(err)
		}
	}
	src := guid.New(guid.KindDevice)
	events := make([]event.Event, batch)
	for i := range events {
		events[i] = event.New("bench.batch", src, uint64(i), t0, nil)
	}
	// Warm the dispatch path (index key cache, target pools) before timing.
	if err := bus.PublishAll(events); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if batch == 1 {
		for i := 0; i < b.N; i++ {
			if err := bus.Publish(events[0]); err != nil {
				b.Fatal(err)
			}
		}
	} else {
		for i := 0; i < b.N; i++ {
			if err := bus.PublishAll(events); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*batch)/secs, "events/s")
	}
}

// BenchmarkE5_Discovery — Fig 5: concurrent discovery/registration bursts.
func BenchmarkE5_Discovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunE5([]int{200})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].P50.Microseconds()), "p50-µs")
		b.ReportMetric(float64(rows[0].P99.Microseconds()), "p99-µs")
	}
}

// BenchmarkE6_QueryModel — Fig 6: query XML encode/decode per mode.
func BenchmarkE6_QueryModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunE6(100)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[1].RoundTrip.Nanoseconds()), "subscribe-roundtrip-ns")
	}
}

// BenchmarkE7_CAPA — Fig 7 / §5: the full CAPA scenario end to end.
func BenchmarkE7_CAPA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE7()
		if err != nil {
			b.Fatal(err)
		}
		if !res.BobCorrect || !res.JohnCorrect {
			b.Fatalf("wrong printers: bob=%s john=%s", res.BobPrinter, res.JohnPrinter)
		}
		b.ReportMetric(float64(res.BobLatency.Microseconds()), "bob-µs")
		b.ReportMetric(float64(res.JohnLatency.Microseconds()), "john-µs")
	}
}

// BenchmarkE8_Repair — §3.2/§6 adaptivity: configuration repair latency.
func BenchmarkE8_Repair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunE8([]int{16})
		if err != nil {
			b.Fatal(err)
		}
		if !rows[0].Repaired {
			b.Fatal("repair failed")
		}
		b.ReportMetric(float64(rows[0].RepairTime.Microseconds()), "repair-µs")
	}
}

// BenchmarkE9_SemanticRebind — §2 iQueue critique: door→WLAN rebinding.
func BenchmarkE9_SemanticRebind(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE9(8)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Rebound {
			b.Fatal("rebind failed")
		}
		b.ReportMetric(float64(res.RebindTime.Microseconds()), "rebind-µs")
	}
}

// BenchmarkE10_ScaleOut — §3 scalability: sharded query throughput.
func BenchmarkE10_ScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunE10([]int{8}, 400, 800)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].QueriesPerSec, "queries/s")
	}
}

// BenchmarkWireCodec — the PR 7 wire-path grid: one event batch encoded as
// a legacy JSON envelope (per-event frames re-marshaled into the body) vs
// the negotiated binary codec (contiguous batch, interned type/GUID
// dictionaries), across batch sizes. Binary steady state — dictionaries
// warmed by the first frame — must report 0 allocs/op.
func BenchmarkWireCodec(b *testing.B) {
	for _, codec := range []wire.Codec{wire.CodecJSON, wire.CodecBinary} {
		for _, batch := range []int{1, 16, 64, 256} {
			b.Run(fmt.Sprintf("codec=%s/batch=%d", codec, batch), func(b *testing.B) {
				benchWireCodec(b, codec, batch)
			})
		}
	}
}

func benchWireCodec(b *testing.B, codec wire.Codec, batch int) {
	src, dst := guid.New(guid.KindServer), guid.New(guid.KindServer)
	dev, rangeID := guid.New(guid.KindDevice), guid.New(guid.KindServer)
	events := make([]event.Event, batch)
	for i := range events {
		e := event.New(ctxtype.TemperatureCelsius, dev, uint64(i+1), t0,
			map[string]any{"value": float64(i)})
		e.Range = rangeID
		events[i] = e
	}
	m, err := wire.NewNativeEventBatch(src, dst, events, &wire.BatchCredit{Dropped: 1})
	if err != nil {
		b.Fatal(err)
	}
	enc := wire.NewEncoder(io.Discard, codec)
	defer enc.Release()
	// Warm the path: the first binary frame ships the dictionary entries;
	// steady state begins at the second.
	if err := enc.Write(m); err != nil {
		b.Fatal(err)
	}
	start := enc.BytesWritten()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Write(m); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(enc.BytesWritten()-start)/float64(b.N), "bytes/frame")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*float64(batch)/secs, "events/s")
	}
}

// BenchmarkCrossRangeFanout — SCINET cross-range event fan-out: events
// published in one Range reach remote subscribers in sibling Ranges as
// coalesced scinet.event_batch overlay messages (batch=1 is the unbatched
// per-event baseline). The codec dimension compares the native batch path
// (events cross the transport un-serialized, as over a binary TCP link)
// against the forced legacy JSON materialization every hop (the pre-PR-7
// wire path). Reports delivered events/s end to end and the coalescing
// ratio actually achieved on the wire.
func BenchmarkCrossRangeFanout(b *testing.B) {
	for _, codec := range []string{"native", "json"} {
		for _, peers := range []int{1, 3} {
			for _, batch := range []int{1, 16, 64} {
				b.Run(fmt.Sprintf("codec=%s/peers=%d/batch=%d", codec, peers, batch), func(b *testing.B) {
					benchCrossRangeFanout(b, codec, peers, batch)
				})
			}
		}
	}
}

func benchCrossRangeFanout(b *testing.B, codec string, peers, batch int) {
	net := transport.NewMemory(transport.MemoryConfig{})
	defer net.Close()
	if codec == "json" {
		net.SetDefaultCodec(wire.CodecJSON)
	}
	mk := func(name string) (*server.Range, *scinet.Fabric) {
		rng := server.New(server.Config{
			Name:           name,
			Coverage:       location.Path("campus/" + name),
			BatchMaxEvents: batch,
			BatchMaxDelay:  2 * time.Millisecond,
		})
		f, err := scinet.NewFabric(rng, net, nil)
		if err != nil {
			b.Fatal(err)
		}
		return rng, f
	}
	pubRange, pubFabric := mk("pub")
	defer pubRange.Close()
	defer pubFabric.Close()

	var delivered atomic.Int64
	for i := 0; i < peers; i++ {
		rng, f := mk(fmt.Sprintf("sub%d", i))
		defer rng.Close()
		defer f.Close()
		if err := f.Join(pubFabric.NodeID()); err != nil {
			b.Fatal(err)
		}
		if _, err := f.SubscribeRemote(guid.New(guid.KindApplication),
			event.Filter{Type: "bench.fanout"}, func(event.Event) {
				delivered.Add(1)
			}); err != nil {
			b.Fatal(err)
		}
	}
	// Wait until the publisher knows every subscriber's interest.
	deadline := time.Now().Add(5 * time.Second)
	for len(pubFabric.Interests()) < peers {
		if time.Now().After(deadline) {
			b.Fatal("interest propagation timed out")
		}
		time.Sleep(time.Millisecond)
	}

	chunk := batch
	if chunk < 1 {
		chunk = 1
	}
	src := guid.New(guid.KindDevice)
	events := make([]event.Event, chunk)
	for i := range events {
		events[i] = event.New("bench.fanout", src, uint64(i), t0, nil)
	}
	target := int64(b.N) * int64(peers)
	b.ReportAllocs()
	b.ResetTimer()
	published := 0
	for published < b.N {
		n := chunk
		if published+n > b.N {
			n = b.N - published
		}
		if err := pubRange.PublishAll(events[:n]); err != nil {
			b.Fatal(err)
		}
		published += n
		// Flow control: the aggregate outstanding count bounds every single
		// subscriber's lag, so capping it below one delivery queue (4096)
		// guarantees no ring overflow even when one subscriber stalls.
		for int64(published)*int64(peers)-delivered.Load() > 2048 {
			time.Sleep(50 * time.Microsecond)
		}
	}
	drainDeadline := time.Now().Add(30 * time.Second)
	for delivered.Load() < target {
		if time.Now().After(drainDeadline) {
			b.Fatalf("delivered %d of %d events before deadline", delivered.Load(), target)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(target)/secs, "events/s")
	}
	if msgs := pubFabric.BatchesForwarded.Value(); msgs > 0 {
		b.ReportMetric(float64(pubFabric.EventsForwarded.Value())/float64(msgs), "events/msg")
	}
}

// BenchmarkE12_AdaptiveFlowControl — the unified flow-control layer's
// hot-vs-idle experiment: one Range Service, a flooded and a trickle-fed
// remote application, static vs rate-adaptive coalescing, plus the
// induced-overload phase whose credit acks throttle the sender. Reports
// the adaptive row's hot throughput and idle p50 latency, and the
// throttled flush-rate ratio.
func BenchmarkE12_AdaptiveFlowControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, bp, err := sim.RunE12(5000, 64, 5*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Mode == "adaptive" {
				b.ReportMetric(r.HotEventsPerSec, "hot-events/s")
				b.ReportMetric(float64(r.IdleP50.Microseconds()), "idle-p50-µs")
			}
		}
		if bp.OverloadFlushPerSec > 0 {
			b.ReportMetric(bp.HealthyFlushPerSec/bp.OverloadFlushPerSec, "throttle-ratio")
		}
	}
}

// BenchmarkE13_MultiHopOverload — the attributed/transitive credit
// experiment: a three-fabric chain (origin → relay → collapsed sink) whose
// relay-reported downstream congestion throttles the origin, plus the
// hot-bidirectional ack-economy phase. Reports the origin's flush-rate
// collapse and the standalone-ack cost relative to PR 4's
// one-ack-per-batch.
func BenchmarkE13_MultiHopOverload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE13(64, 5*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if res.Collapse > 0 {
			b.ReportMetric(res.Collapse, "origin-collapse-x")
		}
		b.ReportMetric(float64(res.RelayDownstream), "relay-downstream-drops")
		b.ReportMetric(res.AckRatioVsPR4, "acks-vs-pr4")
	}
}

// BenchmarkE14_HostileTenant — the tenant-isolation experiment: a hostile
// flood sharing first a Range and then a fabric link with a paced
// publisher, contained by per-publisher admission quotas and weighted-fair
// flushing. Reports the well tenant's p99 degradation with the quota on
// (vs its solo baseline), the hostile tenant's admission clip error, and
// the DRR evictions charged to the flooding source during the
// weights-only collapse.
func BenchmarkE14_HostileTenant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE14(2000, 64, 5*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LocalQuotaX, "range-p99-x-solo")
		b.ReportMetric(res.RemoteQuotaX, "fabric-p99-x-solo")
		b.ReportMetric(100*res.FloodClipErr, "clip-err-pct")
		b.ReportMetric(float64(res.ShedHostile), "hostile-shed-events")
	}
}
