// Command scilint runs the repository's invariant analyzers — the
// per-package passes (clockcheck, batchshare, guardedby, gaugekey) and the
// whole-program passes (lockorder, leakcheck, hotpath) from
// internal/analysis — over the given package patterns and exits non-zero
// on any diagnostic.
//
// Usage:
//
//	go run ./cmd/scilint ./...
//	go run ./cmd/scilint -only lockorder,leakcheck ./internal/scinet/
//	go run ./cmd/scilint -json ./...     # machine-readable findings+stats
//	go run ./cmd/scilint -stats ./...    # counts only, for the CI artifact
//	go run ./cmd/scilint -annotate ./... # dry-run: print suggested annotations
//
// Suppressions: //lint:allow <analyzer> <reason> on the flagged line or the
// line above; the reason must be longer than ten characters. See
// internal/analysis/doc.go for the enforced contracts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sci/internal/analysis"
	"sci/internal/analysis/batchshare"
	"sci/internal/analysis/clockcheck"
	"sci/internal/analysis/gaugekey"
	"sci/internal/analysis/guardedby"
	"sci/internal/analysis/hotpath"
	"sci/internal/analysis/leakcheck"
	"sci/internal/analysis/lockorder"
)

// finding is the JSON shape of one diagnostic.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// report is the JSON document -json emits.
type report struct {
	Findings []finding       `json:"findings"`
	Stats    *analysis.Stats `json:"stats"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings and stats as JSON on stdout")
	statsOnly := flag.Bool("stats", false, "emit only the finding/suppression counts as JSON (exit 0 regardless of findings)")
	annotate := flag.Bool("annotate", false, "dry run: print a suggested //lint:allow annotation for each finding and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: scilint [-only a,b] [-json|-stats|-annotate] <packages>\n\nanalyzers:\n")
		for _, a := range all() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers, err := analysis.Select(all(), *only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scilint: %v\n", err)
		os.Exit(2)
	}

	diags, fset, stats, err := analysis.RunWithStats("", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scilint: %v\n", err)
		os.Exit(2)
	}

	switch {
	case *statsOnly:
		json.NewEncoder(os.Stdout).Encode(stats)
		return
	case *asJSON:
		rep := report{Findings: []finding{}, Stats: stats}
		for _, d := range diags {
			p := fset.Position(d.Pos)
			rep.Findings = append(rep.Findings, finding{
				Analyzer: d.Analyzer, File: p.Filename, Line: p.Line, Col: p.Column, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	case *annotate:
		for _, d := range diags {
			p := fset.Position(d.Pos)
			fmt.Printf("%s:%d: %s (%s)\n", p.Filename, p.Line, d.Message, d.Analyzer)
			fmt.Printf("\tsuggested, directly above the line:\n")
			fmt.Printf("\t//lint:allow %s <why this specific site is safe — more than ten chars>\n", d.Analyzer)
		}
		fmt.Printf("%d finding(s); no files were changed\n", len(diags))
		return
	default:
		for _, d := range diags {
			p := fset.Position(d.Pos)
			fmt.Printf("%s:%d:%d: %s (%s)\n", p.Filename, p.Line, p.Column, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "scilint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func all() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		clockcheck.Analyzer,
		batchshare.Analyzer,
		guardedby.Analyzer,
		gaugekey.Analyzer,
		lockorder.Analyzer,
		leakcheck.Analyzer,
		hotpath.Analyzer,
	}
}
