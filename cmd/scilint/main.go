// Command scilint runs the repository's invariant analyzers — clockcheck,
// batchshare, guardedby and gaugekey (internal/analysis) — over the given
// package patterns and exits non-zero on any diagnostic.
//
// Usage:
//
//	go run ./cmd/scilint ./...
//	go run ./cmd/scilint -only clockcheck ./internal/scinet/
//
// Suppressions: //lint:allow <analyzer> <reason> on the flagged line or the
// line above. See internal/analysis/doc.go for the enforced contracts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sci/internal/analysis"
	"sci/internal/analysis/batchshare"
	"sci/internal/analysis/clockcheck"
	"sci/internal/analysis/gaugekey"
	"sci/internal/analysis/guardedby"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: scilint [-only a,b] <packages>\n\nanalyzers:\n")
		for _, a := range all() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := all()
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "scilint: no analyzer matches -only %q\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	diags, fset, err := analysis.Run("", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scilint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		fmt.Printf("%s:%d:%d: %s (%s)\n", p.Filename, p.Line, p.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "scilint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func all() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		clockcheck.Analyzer,
		batchshare.Analyzer,
		guardedby.Analyzer,
		gaugekey.Analyzer,
	}
}
