// Command scid runs one Range (Context Server) on TCP, optionally seeded
// with simulated sensors, and prints its connection details so remote
// components (cmd/sciquery, remote CEs) can register.
//
//	scid -name level-10 -coverage campus/tower/f0 -printers 2 -doors 4
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"sci/internal/entity"
	"sci/internal/location"
	"sci/internal/rangesvc"
	"sci/internal/sensor"
	"sci/internal/server"
	"sci/internal/sim"
	"sci/internal/transport"
)

func main() {
	name := flag.String("name", "range", "range name")
	coverage := flag.String("coverage", "campus/tower/f0", "hierarchical area covered")
	printers := flag.Int("printers", 2, "simulated printers to host")
	doors := flag.Int("doors", 4, "simulated door sensors to host")
	flag.Parse()
	if err := run(*name, *coverage, *printers, *doors); err != nil {
		fmt.Fprintln(os.Stderr, "scid:", err)
		os.Exit(1)
	}
}

func run(name, coverage string, printers, doors int) error {
	b, err := sim.NewBuilding(1, max(printers+doors, 4))
	if err != nil {
		return err
	}
	rng := server.New(server.Config{
		Name:     name,
		Places:   b.Map,
		Coverage: location.Path(coverage),
	})
	defer rng.Close()

	net := transport.NewTCP(nil)
	defer net.Close()
	host, err := rangesvc.NewHost(rng, net, nil)
	if err != nil {
		return err
	}
	defer host.Close()

	obj := entity.NewObjLocationCE(b.Map, nil)
	if err := rng.AddEntity(obj); err != nil {
		return err
	}
	for i := 0; i < doors && i < len(b.Rooms[0]); i++ {
		room := b.Rooms[0][i]
		ds := sensor.NewDoorSensor(b.DoorOf[room], location.AtPlace(room), nil)
		if err := rng.AddEntity(ds); err != nil {
			return err
		}
	}
	for i := 0; i < printers && i < len(b.Rooms[0]); i++ {
		p := sensor.NewPrinter(fmt.Sprintf("P%d", i+1), location.AtPlace(b.Rooms[0][i]), nil)
		if err := rng.AddEntity(p); err != nil {
			return err
		}
	}

	addr, _ := net.Directory().Lookup(rng.ServerID())
	fmt.Printf("range %q up\n  server id: %s\n  address:   %s\n  coverage:  %s\n  entities:  %d\n",
		name, rng.ServerID(), addr, coverage, rng.Registrar().Len())
	fmt.Println("press Ctrl-C to stop")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
