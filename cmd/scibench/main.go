// Command scibench regenerates every experiment of DESIGN.md §4 (one per
// paper figure/claim) and prints the result tables.
//
//	scibench              # run everything (moderate sizes)
//	scibench -exp e1      # one experiment
//	scibench -exp e1 -big # larger parameter sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sci/internal/sim"
	"sci/internal/wire"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: e1..e16 or all")
	big := flag.Bool("big", false, "larger parameter sweeps (slower)")
	seed := flag.Int64("seed", 42, "simulation seed")
	codec := flag.String("codec", "native",
		"wire path for e11: native (zero-copy batches) or json (legacy baseline)")
	jsonPath := flag.String("json", "", "write e16 rows and verdict to this file as JSON")
	flag.Parse()
	if err := run(*exp, *codec, *jsonPath, *big, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "scibench:", err)
		os.Exit(1)
	}
}

func run(exp, codec, jsonPath string, big bool, seed int64) error {
	var wireCodec wire.Codec
	switch codec {
	case "native", "binary", "":
		// Batches ride the transport un-serialized (the default).
	case "json":
		wireCodec = wire.CodecJSON
	default:
		return fmt.Errorf("unknown -codec %q (want native or json)", codec)
	}
	all := exp == "all"
	sizes := func(small, large []int) []int {
		if big {
			return large
		}
		return small
	}

	if all || exp == "e1" {
		rows, err := sim.RunE1(sizes([]int{16, 64, 128}, []int{16, 64, 256, 1024}), 1000, seed)
		if err != nil {
			return err
		}
		fmt.Println(sim.E1Table(rows))
	}
	if all || exp == "e2" {
		rows, err := sim.RunE2(sizes([]int{10, 100, 1000}, []int{10, 100, 1000, 5000}))
		if err != nil {
			return err
		}
		fmt.Println(sim.E2Table(rows))
	}
	if all || exp == "e3" {
		rows, err := sim.RunE3(sizes([]int{10, 100, 1000}, []int{10, 100, 1000, 10000}), 5)
		if err != nil {
			return err
		}
		fmt.Println(sim.E3Table(rows))
	}
	if all || exp == "e4" {
		rows, err := sim.RunE4(sizes([]int{1, 10, 100}, []int{1, 10, 100, 1000}), 200)
		if err != nil {
			return err
		}
		fmt.Println(sim.E4Table(rows))
	}
	if all || exp == "e5" {
		rows, err := sim.RunE5(sizes([]int{1, 50, 200}, []int{1, 50, 200, 500}))
		if err != nil {
			return err
		}
		fmt.Println(sim.E5Table(rows))
	}
	if all || exp == "e6" {
		rows, err := sim.RunE6(2000)
		if err != nil {
			return err
		}
		fmt.Println(sim.E6Table(rows))
	}
	if all || exp == "e7" {
		res, err := sim.RunE7()
		if err != nil {
			return err
		}
		fmt.Println(sim.E7Table(res))
	}
	if all || exp == "e8" {
		rows, err := sim.RunE8(sizes([]int{2, 16, 64}, []int{2, 16, 64, 256}))
		if err != nil {
			return err
		}
		fmt.Println(sim.E8Table(rows))
	}
	if all || exp == "e9" {
		res, err := sim.RunE9(8)
		if err != nil {
			return err
		}
		fmt.Println(sim.E9Table(res))
	}
	if all || exp == "e10" {
		rows, err := sim.RunE10(sizes([]int{1, 4, 16}, []int{1, 4, 16, 64}), 800, 4000)
		if err != nil {
			return err
		}
		fmt.Println(sim.E10Table(rows))
	}
	if all || exp == "e11" {
		events := 20000
		if big {
			events = 200000
		}
		rows, fleet, err := sim.RunE11Codec(sizes([]int{2, 4}, []int{2, 4, 8, 16}), events, 64, wireCodec)
		if err != nil {
			return err
		}
		fmt.Println(sim.E11Table(rows))
		if fleet != nil {
			fmt.Println(sim.E11FleetTable(fleet))
		}
	}
	if all || exp == "e12" {
		hot := 20000
		if big {
			hot = 200000
		}
		rows, bp, err := sim.RunE12(hot, 64, 5*time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Println(sim.E12Table(rows))
		if bp != nil {
			fmt.Println(sim.E12BackpressureTable(bp))
		}
	}
	if all || exp == "e13" {
		res, err := sim.RunE13(64, 5*time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Println(sim.E13Table(res))
		fmt.Println(sim.E13AckTable(res))
	}
	if all || exp == "e14" {
		res, err := sim.RunE14(2000, 64, 5*time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Println(sim.E14Table(res))
	}
	if all || exp == "e16" {
		rows, err := sim.RunE16(sizes([]int{32, 64, 128}, []int{32, 64, 128, 256}), 100)
		if err != nil {
			return err
		}
		fmt.Println(sim.E16Table(rows))
		checkErr := sim.E16Check(rows)
		if jsonPath != "" {
			verdict := "pass"
			if checkErr != nil {
				verdict = checkErr.Error()
			}
			artifact := struct {
				Rows  []sim.E16Row `json:"rows"`
				Check string       `json:"check"`
			}{rows, verdict}
			blob, err := json.MarshalIndent(artifact, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
				return err
			}
		}
		if checkErr != nil {
			return checkErr
		}
	}
	return nil
}
