// Command sciquery submits a query (compact text form) to a Context Server
// reachable over TCP and prints the results. For subscription modes it
// keeps listening and prints each delivered event.
//
//	sciquery -server <guid> -addr 127.0.0.1:7000 \
//	    "what=pattern:printer.status which=closest mode=profile"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"sci/internal/event"
	"sci/internal/guid"
	"sci/internal/profile"
	"sci/internal/query"
	"sci/internal/rangesvc"
	"sci/internal/transport"
)

func main() {
	serverID := flag.String("server", "", "context server GUID (from scid output)")
	addr := flag.String("addr", "", "context server TCP address")
	flag.Parse()
	if flag.NArg() != 1 || *serverID == "" || *addr == "" {
		fmt.Fprintln(os.Stderr, "usage: sciquery -server <guid> -addr <host:port> \"<query text>\"")
		os.Exit(2)
	}
	if err := run(*serverID, *addr, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "sciquery:", err)
		os.Exit(1)
	}
}

func run(serverStr, addr, text string) error {
	srv, err := guid.Parse(serverStr)
	if err != nil {
		return fmt.Errorf("bad server guid: %w", err)
	}
	dir := &transport.Directory{}
	dir.Register(srv, addr)
	net := transport.NewTCP(dir)
	defer net.Close()

	id := guid.New(guid.KindApplication)
	events := make(chan event.Event, 64)
	conn, err := rangesvc.NewConnector(id, "sciquery", net, func(e event.Event) {
		select {
		case events <- e:
		default:
		}
	}, nil)
	if err != nil {
		return err
	}
	defer conn.Close()

	if err := conn.Register(srv, profileFor(id), true); err != nil {
		return err
	}
	q, err := query.ParseText(id, text)
	if err != nil {
		return err
	}
	res, err := conn.Submit(q)
	if err != nil {
		return err
	}
	out, _ := json.MarshalIndent(res, "", "  ")
	fmt.Println(string(out))

	if q.Mode != query.ModeSubscribe && q.Mode != query.ModeOnce {
		return nil
	}
	fmt.Println("listening for events (Ctrl-C to stop)...")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case e := <-events:
			line, _ := json.Marshal(e)
			fmt.Println(string(line))
			if q.Mode == query.ModeOnce {
				return nil
			}
		case <-sig:
			return nil
		}
	}
}

// profileFor builds the minimal CAA profile for registration.
func profileFor(id guid.GUID) profile.Profile {
	return profile.Profile{Entity: id, Name: "sciquery"}
}
