// Pathfinder: the paper's Section 3.2 composition example. A mobile map
// application asks for the Path between Bob and John; the Query Resolver
// composes pathApp ← pathCE ← objLocationCE ← doorSensorCEs automatically,
// and every door crossing updates the displayed path.
package main

import (
	"fmt"
	"os"
	"time"

	"sci"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pathfinder:", err)
		os.Exit(1)
	}
}

func run() error {
	b, err := sci.NewBuilding(1, 6)
	if err != nil {
		return err
	}
	rng := sci.NewRange(sci.RangeConfig{Name: "floor-0", Places: b.Map})
	defer rng.Close()

	// Door sensors on every room plus the interpreters of §3.2.
	world := sci.NewWorld(b.Map)
	for room, door := range b.DoorOf {
		ds := sci.NewDoorSensor(door, sci.AtPlace(room), nil)
		if err := rng.AddEntity(ds); err != nil {
			return err
		}
		world.AttachDoorSensor(ds)
	}
	obj := sci.NewObjLocationCE(b.Map, nil)
	if err := rng.AddEntity(obj); err != nil {
		return err
	}
	pathCE := sci.NewPathCE(b.Map, nil)
	if err := rng.AddEntity(pathCE); err != nil {
		return err
	}

	bob := sci.NewGUID(sci.KindPerson)
	john := sci.NewGUID(sci.KindPerson)
	if err := world.AddActor(sci.Actor{ID: bob, Name: "bob", Badge: true}, b.Lobbies[0]); err != nil {
		return err
	}
	if err := world.AddActor(sci.Actor{ID: john, Name: "john", Badge: true}, b.Lobbies[0]); err != nil {
		return err
	}
	pathCE.Watch(bob, john)

	// The path application: print each updated path.
	updates := make(chan sci.Event, 16)
	app := sci.NewCAA("pathApp", func(e sci.Event) { updates <- e }, nil)
	if err := rng.AddApplication(app); err != nil {
		return err
	}
	q := sci.NewQuery(app.ID(), sci.What{Pattern: sci.PathRoute}, sci.ModeSubscribe)
	if _, err := rng.Submit(q); err != nil {
		return err
	}

	// Bob and John walk to opposite rooms; every door crossing refreshes
	// the path.
	if _, err := world.MoveTo(bob, b.Rooms[0][0]); err != nil {
		return err
	}
	if _, err := world.MoveTo(john, b.Rooms[0][5]); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		select {
		case e := <-updates:
			fmt.Printf("path update: %v (length %.1f m)\n", e.Payload["places"], num(e, "length"))
		case <-time.After(3 * time.Second):
			return fmt.Errorf("no path update %d", i)
		}
	}
	// John walks toward Bob: the path shrinks, demonstrating the live
	// subscription graph of §3.2.
	if _, err := world.MoveTo(john, b.Rooms[0][1]); err != nil {
		return err
	}
	select {
	case e := <-updates:
		fmt.Printf("after John moved: %v (length %.1f m)\n", e.Payload["places"], num(e, "length"))
	case <-time.After(3 * time.Second):
		return fmt.Errorf("no update after movement")
	}
	fmt.Println("pathfinder complete")
	return nil
}

func num(e sci.Event, key string) float64 {
	v, _ := e.Float(key)
	return v
}
