// Command crossrange demonstrates SCINET cross-range event fan-out: three
// Ranges (a plant floor, a control room and an off-site dashboard) joined
// into one SCINET. Sensors publish on the plant floor; subscribers in the
// other two Ranges receive the readings through coalesced
// scinet.event_batch overlay messages — no per-query proxy, no per-event
// JSON hop — and a fleet-wide dispatch.stats rollup closes the loop.
package main

import (
	"fmt"
	"time"

	"sci"
)

func main() {
	net := sci.NewMemoryNetwork()
	defer net.Close()

	mk := func(name, coverage string) (*sci.Range, *sci.Fabric) {
		rng := sci.NewRange(sci.RangeConfig{
			Name:           name,
			Coverage:       sci.LocationPath(coverage),
			BatchMaxEvents: 16, // coalesce up to 16 remote deliveries per overlay message
			BatchMaxDelay:  2 * time.Millisecond,
		})
		fab, err := sci.NewFabric(rng, net, nil)
		if err != nil {
			panic(err)
		}
		return rng, fab
	}

	floor, floorFab := mk("plant-floor", "plant/floor")
	control, controlFab := mk("control-room", "plant/control")
	dash, dashFab := mk("dashboard", "hq/dashboard")
	defer floor.Close()
	defer control.Close()
	defer dash.Close()
	defer floorFab.Close()
	defer controlFab.Close()
	defer dashFab.Close()

	if err := controlFab.Join(floorFab.NodeID()); err != nil {
		panic(err)
	}
	if err := dashFab.Join(floorFab.NodeID()); err != nil {
		panic(err)
	}

	// Remote subscribers: each names an interest; matching events published
	// anywhere in the SCINET are forwarded here in batches.
	controlSeen := make(chan sci.Event, 256)
	if _, err := controlFab.SubscribeRemote(sci.NewGUID(sci.KindApplication),
		sci.EventFilter{Type: sci.TemperatureKelvin}, func(e sci.Event) {
			controlSeen <- e
		}); err != nil {
		panic(err)
	}
	dashCount := 0
	dashDone := make(chan struct{})
	if _, err := dashFab.SubscribeRemote(sci.NewGUID(sci.KindApplication),
		sci.EventFilter{Type: sci.TemperatureKelvin}, func(sci.Event) {
			dashCount++
			if dashCount == 32 {
				close(dashDone)
			}
		}); err != nil {
		panic(err)
	}

	// Let interest announcements reach the plant floor.
	for len(floorFab.Interests()) < 2 {
		time.Sleep(time.Millisecond)
	}

	// A probe on the plant floor ticks 32 readings.
	probe := sci.NewTemperatureSensor("boiler", sci.Ref{}, 294, 2, 1, nil)
	if err := floor.AddEntity(probe); err != nil {
		panic(err)
	}
	for i := 0; i < 32; i++ {
		if err := probe.Tick(); err != nil {
			panic(err)
		}
	}

	e := <-controlSeen
	fmt.Printf("control room sees %s readings from the plant floor (e.g. %.1f K)\n",
		e.Type, mustFloat(e, "value"))
	<-dashDone
	fmt.Printf("dashboard received %d readings\n", dashCount)
	fmt.Printf("plant floor shipped %d overlay batches carrying %d events\n",
		floorFab.BatchesForwarded.Value(), floorFab.EventsForwarded.Value())

	fleet, err := floorFab.FleetDispatchStats(2 * time.Second)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fleet rollup: %d ranges, %.0f published, %.0f delivered, %.0f dropped\n",
		fleet.Ranges, fleet.Totals["published"], fleet.Totals["delivered"], fleet.Totals["dropped"])
}

func mustFloat(e sci.Event, key string) float64 {
	v, _ := e.Float(key)
	return v
}
