// Quickstart: one Range, a temperature sensor, an interpreter and a
// dashboard application — the smallest complete SCI pipeline.
package main

import (
	"fmt"
	"os"
	"time"

	"sci"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	types := sci.NewTypeRegistry()
	rng := sci.NewRange(sci.RangeConfig{Name: "lab", Types: types})
	defer rng.Close()

	// A Kelvin probe and the Kelvin→Celsius interpreter CE.
	thermo := sci.NewTemperatureSensor("lab-probe", sci.Ref{}, 294, 2, 1, nil)
	if err := rng.AddEntity(thermo); err != nil {
		return err
	}
	k2c := sci.NewInterpreterCE("k2c", types, sci.TemperatureKelvin, sci.TemperatureCelsius, nil)
	if err := rng.AddEntity(k2c); err != nil {
		return err
	}

	// The dashboard subscribes to Celsius readings; the Query Resolver
	// composes probe → interpreter → dashboard automatically.
	done := make(chan struct{}, 8)
	app := sci.NewCAA("dashboard", func(e sci.Event) {
		v, _ := e.Float("value")
		fmt.Printf("lab temperature: %.2f °C (event %s)\n", v, e.ID.Short())
		done <- struct{}{}
	}, nil)
	if err := rng.AddApplication(app); err != nil {
		return err
	}
	q := sci.NewQuery(app.ID(), sci.What{Pattern: sci.TemperatureCelsius}, sci.ModeSubscribe)
	if _, err := rng.Submit(q); err != nil {
		return err
	}

	for i := 0; i < 5; i++ {
		if err := thermo.Tick(); err != nil {
			return err
		}
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			return fmt.Errorf("no reading delivered")
		}
	}
	fmt.Println("quickstart complete")
	return nil
}
