// Mobility: two Ranges joined into a SCINET; a visitor's application in the
// lobby Range subscribes to positions on another floor, the query is
// forwarded across the overlay (the paper's CAPA forwarding hop), and the
// infrastructure repairs the configuration when the bound door sensor dies.
package main

import (
	"fmt"
	"os"
	"time"

	"sci"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mobility:", err)
		os.Exit(1)
	}
}

func run() error {
	net := sci.NewMemoryNetwork()
	defer net.Close()

	b, err := sci.NewBuilding(1, 4)
	if err != nil {
		return err
	}
	lobby := sci.NewRange(sci.RangeConfig{Name: "lift-lobby", Coverage: "campus/lobby"})
	defer lobby.Close()
	floor := sci.NewRange(sci.RangeConfig{Name: "floor-0", Places: b.Map, Coverage: "campus/tower/f0"})
	defer floor.Close()

	fLobby, err := sci.NewFabric(lobby, net, nil)
	if err != nil {
		return err
	}
	defer fLobby.Close()
	fFloor, err := sci.NewFabric(floor, net, nil)
	if err != nil {
		return err
	}
	defer fFloor.Close()
	if err := fFloor.Join(fLobby.NodeID()); err != nil {
		return err
	}

	// Floor-0 sensors: two equivalent door sensors plus a WLAN basestation
	// (semantic fallback), and the objLocation interpreter.
	room := b.Rooms[0][0]
	dsA := sci.NewDoorSensor(b.DoorOf[room], sci.AtPlace(room), nil)
	dsB := sci.NewDoorSensor(b.DoorOf[b.Rooms[0][1]], sci.AtPlace(b.Rooms[0][1]), nil)
	bs := sci.NewBaseStation("f0-cell", []sci.PlaceID{room, b.Corridors[0]}, sci.AtPlace(b.Corridors[0]), nil)
	obj := sci.NewObjLocationCE(b.Map, nil)
	for _, ce := range []sci.CE{dsA, dsB, bs, obj} {
		if err := floor.AddEntity(ce); err != nil {
			return err
		}
	}

	// The visitor's app registers in the LOBBY but asks about floor 0: the
	// query crosses the SCINET.
	got := make(chan sci.Event, 16)
	app := sci.NewCAA("visitor-app", func(e sci.Event) { got <- e }, nil)
	if err := lobby.AddApplication(app); err != nil {
		return err
	}
	// Wait for coverage gossip.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, ok := fLobby.CoveringNode("campus/tower/f0"); ok {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("coverage never propagated")
		}
		time.Sleep(time.Millisecond)
	}
	q := sci.NewQuery(app.ID(), sci.What{Pattern: sci.LocationPosition}, sci.ModeSubscribe)
	q.Where.Explicit = sci.AtPath("campus/tower/f0")
	if _, err := fLobby.Submit(q, app); err != nil {
		return err
	}
	fmt.Println("query forwarded lobby → floor-0 across the SCINET")

	visitor := sci.NewGUID(sci.KindPerson)
	mustSight := func(label string) error {
		for _, ds := range []*sci.DoorSensor{dsA, dsB} {
			if err := ds.Sight(visitor, room); err != nil {
				return err
			}
		}
		select {
		case e := <-got:
			fmt.Printf("%s: position update for %s at %v\n", label, e.Subject.Short(), e.Payload["place"])
			return nil
		case <-time.After(3 * time.Second):
			return fmt.Errorf("%s: no update", label)
		}
	}
	if err := mustSight("before failure"); err != nil {
		return err
	}

	// Kill both door sensors: the configuration runtime rebinds to the
	// semantically equivalent WLAN basestation (the paper's adaptivity).
	for _, ds := range []*sci.DoorSensor{dsA, dsB} {
		if err := floor.RemoveEntity(ds.ID()); err != nil {
			return err
		}
	}
	fmt.Println("both door sensors failed; configuration repaired onto the basestation")
	if err := bs.Observe(sci.NewGUID(sci.KindDevice), room); err != nil {
		return err
	}
	select {
	case e := <-got:
		fmt.Printf("after repair: position update at %v (source %s)\n", e.Payload["place"], e.Source.Short())
	case <-time.After(3 * time.Second):
		return fmt.Errorf("no update after repair")
	}
	fmt.Println("mobility example complete")
	return nil
}
