// CAPA: the paper's Section 5 scenario — a Context Aware Printing
// Application. Bob stores a query that fires when his badge enters his
// office and prints to the closest idle printer (P1); John then asks for
// the closest idle printer with an empty queue and, with P1 busy, P2 out of
// paper and P3 behind a locked door, gets P4.
package main

import (
	"fmt"
	"os"

	"sci/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "capa:", err)
		os.Exit(1)
	}
}

func run() error {
	cw, err := sim.NewCAPAWorld()
	if err != nil {
		return err
	}
	defer cw.Close()

	fmt.Println("CAPA — Context Aware Printing Application (paper §5)")
	fmt.Println("world: 1 floor, 8 rooms; P1 idle, P2 out of paper, P3 locked, P4 idle")

	bob, err := cw.RunBob([]string{"slides.pdf", "deliverable.pdf"})
	if err != nil {
		return err
	}
	fmt.Printf("bob:  entered his office; documents sent to %s (%s) in %v\n",
		bob.Printer, bob.Job, bob.Elapsed.Round(1000))

	john, err := cw.RunJohn("lecture-notes.pdf")
	if err != nil {
		return err
	}
	fmt.Printf("john: closest free printer with no queue is %s (%s) in %v\n",
		john.Printer, john.Job, john.Elapsed.Round(1000))

	if bob.Printer != "P1" || john.Printer != "P4" {
		return fmt.Errorf("unexpected selection: bob=%s john=%s", bob.Printer, john.Printer)
	}
	fmt.Println("scenario matches the paper: Bob → P1, John → P4")
	return nil
}
