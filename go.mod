module sci

go 1.22
